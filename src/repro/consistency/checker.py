"""The MCM checker: verify a candidate execution against a model.

Checks performed (all polynomial, per paper §2.1 and §4.1):

1. **Coherence / uniproc**: ``acyclic(po-loc | rf | co | fr)`` - the
   per-location SC requirement every model shares.
2. **Atomicity**: for every RMW pair (r, w), no other write to the same
   address is coherence-ordered between the write r read from and w.
3. **Global happens-before**: ``acyclic(ppo+fences | rf(e) | co | fr)``
   where the model decides whether internal rf participates.

Any inconsistency in the observed trace itself (a read returning a value no
write produced, a branching coherence order, i.e. a lost update) is also
reported as a violation - these indicate memory-system data corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.execution import (CandidateExecution, ExecutionBuildError,
                                         execution_from_trace)
from repro.consistency.models import MemoryModel
from repro.consistency.relations import Relation
from repro.sim.testprogram import TestThread
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class Violation:
    """One detected violation of the memory model."""

    kind: str               # "coherence", "atomicity", "ghb", "corruption"
    description: str
    cycle: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.description}"


@dataclass
class CheckResult:
    """Result of checking one candidate execution."""

    passed: bool
    violations: list[Violation] = field(default_factory=list)
    execution: CandidateExecution | None = None

    @classmethod
    def ok(cls, execution: CandidateExecution) -> "CheckResult":
        return cls(passed=True, execution=execution)


class Checker:
    """Checks candidate executions against a memory model."""

    def __init__(self, model: MemoryModel) -> None:
        self.model = model

    # ------------------------------------------------------------------

    def check_trace(self, threads: list[TestThread],
                    trace: ExecutionTrace) -> CheckResult:
        """Build the execution from a trace and check it."""
        try:
            execution = execution_from_trace(threads, trace)
        except ExecutionBuildError as error:
            return CheckResult(passed=False, violations=[
                Violation(kind="corruption", description=str(error))])
        return self.check(execution)

    def check(self, execution: CandidateExecution) -> CheckResult:
        violations: list[Violation] = []
        violations.extend(self._check_coherence(execution))
        violations.extend(self._check_atomicity(execution))
        violations.extend(self._check_global(execution))
        if violations:
            return CheckResult(passed=False, violations=violations,
                               execution=execution)
        return CheckResult.ok(execution)

    # ------------------------------------------------------------------

    def _check_coherence(self, execution: CandidateExecution) -> list[Violation]:
        relation = Relation.union(execution.po_loc_edges(), execution.rf,
                                  execution.co, execution.fr)
        cycle = relation.find_cycle()
        if cycle is None:
            return []
        description = ("per-location coherence (uniproc) violated: " +
                       " -> ".join(str(node) for node in cycle))
        return [Violation(kind="coherence", description=description,
                          cycle=tuple(cycle))]

    def _check_atomicity(self, execution: CandidateExecution) -> list[Violation]:
        violations = []
        for read, write in execution.atomic_pairs():
            source = execution.rf_sources.get(read)
            if source is None:
                continue
            chain = execution.co_chains.get(read.address, [])
            if source not in chain or write not in chain:
                continue
            gap = chain[chain.index(source) + 1: chain.index(write)]
            if gap:
                violations.append(Violation(
                    kind="atomicity",
                    description=(f"RMW atomicity violated at {read.address:#x}: "
                                 f"{len(gap)} write(s) intervene between "
                                 f"{source.eid} and {write.eid}")))
        return violations

    def _check_global(self, execution: CandidateExecution) -> list[Violation]:
        ppo = self.model.preserved_program_order(execution)
        relation = Relation.union(ppo, execution.co, execution.fr)
        for source, read in execution.rf.edges():
            internal = (source.pid == read.pid and not source.is_init)
            if internal and not self.model.includes_internal_rf:
                continue
            relation.add(source, read)
        cycle = relation.find_cycle()
        if cycle is None:
            return []
        description = (f"{self.model.name} global happens-before cycle: " +
                       " -> ".join(str(node) for node in cycle))
        return [Violation(kind="ghb", description=description,
                          cycle=tuple(cycle))]
