"""The MCM checker: verify a candidate execution against a model.

Checks performed (all polynomial, per paper §2.1 and §4.1):

1. **Coherence / uniproc**: ``acyclic(po-loc | rf | co | fr)`` - the
   per-location SC requirement every model shares.
2. **Atomicity**: for every RMW pair (r, w), no other write to the same
   address is coherence-ordered between the write r read from and w.
3. **Global happens-before**: ``acyclic(ppo+fences | rf(e) | co | fr)``
   where the model decides whether internal rf participates.

Any inconsistency in the observed trace itself (a read returning a value no
write produced, a branching coherence order, i.e. a lost update) is also
reported as a violation - these indicate memory-system data corruption.

When handed a :class:`~repro.consistency.memo.VerdictCache`, the checker
runs MTraceCheck-style collective checking: each execution is fingerprinted
(:func:`~repro.consistency.signature.execution_signature`) and a cached
*passing* verdict for the same canonical signature skips the three cycle
checks outright — the returned ``CheckResult.ok(execution)`` is
byte-identical to what a full check of this (isomorphic) execution would
produce, so memoization never changes what is reported.  Cached *failing*
verdicts never short-circuit: the check re-runs so violation descriptions
name the events of the execution actually at hand (a failing check ends a
campaign, so this path stays rare and cheap).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.consistency.execution import (CandidateExecution, ExecutionBuildError,
                                         execution_from_trace)
from repro.consistency.memo import KEYING_CANONICAL, CachedVerdict, VerdictCache
from repro.consistency.models import MemoryModel
from repro.consistency.relations import Relation
from repro.consistency.signature import execution_signature
from repro.sim.testprogram import TestThread
from repro.sim.trace import ExecutionTrace

#: Backend selector values accepted by :class:`Checker` (and threaded
#: through the harness as ``checker_backend=...``).
BACKEND_AUTO = "auto"
BACKEND_PYTHON = "python"
BACKEND_MATRIX = "matrix"
BACKENDS = (BACKEND_AUTO, BACKEND_PYTHON, BACKEND_MATRIX)


@dataclass(frozen=True)
class Violation:
    """One detected violation of the memory model."""

    kind: str               # "coherence", "atomicity", "ghb", "corruption"
    description: str
    cycle: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.description}"


@dataclass
class CheckResult:
    """Result of checking one candidate execution.

    ``trace`` is only populated on the corruption path, where no
    ``CandidateExecution`` could be built — it preserves the partial
    context (the raw observed trace) for diagnosis.  ``backend`` names
    the checker backend that produced the verdict (``"python"`` or
    ``"matrix"``); backends are verdict-equivalent, so it is telemetry,
    never semantics.

    .. deprecated::
        Reaching into ``result.violations[i]`` positionally (tuple
        unpacking the violation fields, or indexing ``.args``) is
        deprecated; use :meth:`violations_summary` for a stable
        reporting/telemetry view.
    """

    passed: bool
    violations: list[Violation] = field(default_factory=list)
    execution: CandidateExecution | None = None
    trace: ExecutionTrace | None = None
    backend: str | None = None

    @classmethod
    def ok(cls, execution: CandidateExecution,
           backend: str | None = None) -> "CheckResult":
        return cls(passed=True, execution=execution, backend=backend)

    def violations_summary(self) -> tuple[str, ...]:
        """Stable ``"kind: description"`` strings, one per violation.

        The supported accessor for reporting and telemetry — it
        insulates callers from the :class:`Violation` field layout.
        """
        return tuple(f"{violation.kind}: {violation.description}"
                     for violation in self.violations)


@runtime_checkable
class CheckerBackend(Protocol):
    """The pluggable cycle-search kernel behind :class:`Checker`.

    A backend answers exactly one question — *one deterministic cycle
    in the union of these relations over this node universe, or None* —
    because both graph checks (coherence and global happens-before)
    reduce to it.  Backends must agree cycle-for-cycle: the checker's
    verdicts and violation descriptions never depend on which backend
    ran.
    """

    name: str

    def find_cycle(self, nodes: Sequence,
                   relations: Sequence[Relation]) -> list | None:
        """Return one cycle path ``[n0, ..., n0]`` or None if acyclic."""
        ...  # pragma: no cover - protocol


class PythonBackend:
    """The always-available pure-python backend: sparse DFS cycle search."""

    name = BACKEND_PYTHON

    def find_cycle(self, nodes: Sequence,
                   relations: Sequence[Relation]) -> list | None:
        return Relation.union(*relations).find_cycle()


def resolve_backend(backend: "str | CheckerBackend" = BACKEND_AUTO,
                    ) -> CheckerBackend:
    """Resolve a backend selector to a concrete :class:`CheckerBackend`.

    ``"python"`` always works; ``"matrix"`` requires numpy (raising a
    clear error otherwise); ``"auto"`` — the default everywhere —
    picks the vectorized matrix backend when numpy imports and falls
    back to python when it does not.  A ready-made backend instance
    passes through unchanged.
    """
    if not isinstance(backend, str):
        return backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown checker backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    if backend == BACKEND_PYTHON:
        return PythonBackend()
    from repro.consistency import matrix as matrix_module
    if backend == BACKEND_MATRIX or matrix_module.HAVE_NUMPY:
        return matrix_module.MatrixBackend()
    return PythonBackend()


def resolve_backend_name(backend: "str | CheckerBackend" = BACKEND_AUTO,
                         ) -> str:
    """The concrete backend name a selector resolves to (telemetry)."""
    return resolve_backend(backend).name


def external_rf(execution: CandidateExecution,
                model: MemoryModel) -> Relation:
    """The rf edges that participate in *model*'s global ordering.

    Internal reads-from (same-thread, non-init source) only
    participates when the model says so (SC yes, TSO no — store
    forwarding); shared by both backends and the batch kernel.
    """
    relation = Relation()
    for source, read in execution.rf.edges():
        internal = (source.pid == read.pid and not source.is_init)
        if internal and not model.includes_internal_rf:
            continue
        relation.add(source, read)
    return relation


def atomicity_violations(execution: CandidateExecution) -> list[Violation]:
    """RMW-atomicity violations of *execution* (per-address chain walk).

    For every RMW pair (r, w): w must be coherence-ordered directly
    after the write r read from — a reversed pair or any intervening
    write breaks atomicity.  Plain python in every backend: it walks
    short per-address chains rather than searching a graph.
    """
    violations = []
    for read, write in execution.atomic_pairs():
        source = execution.rf_sources.get(read)
        if source is None:
            continue
        chain = execution.co_chains.get(read.address, [])
        if source not in chain or write not in chain:
            continue
        source_index = chain.index(source)
        write_index = chain.index(write)
        if write_index <= source_index:
            # The RMW's write is coherence-ordered at or before the
            # write its read observed: the pair went backwards in co,
            # which is itself an atomicity violation (the old slice
            # came out empty here and silently passed).
            violations.append(Violation(
                kind="atomicity",
                description=(f"RMW atomicity violated at {read.address:#x}: "
                             f"write {write.eid} is coherence-ordered "
                             f"before its read's source {source.eid}")))
            continue
        gap = chain[source_index + 1: write_index]
        if gap:
            violations.append(Violation(
                kind="atomicity",
                description=(f"RMW atomicity violated at {read.address:#x}: "
                             f"{len(gap)} write(s) intervene between "
                             f"{source.eid} and {write.eid}")))
    return violations


class Checker:
    """Checks candidate executions against a memory model.

    *backend* selects the cycle-search kernel: ``"auto"`` (default —
    the vectorized matrix backend when numpy is available, else pure
    python), ``"python"``, ``"matrix"``, or a ready
    :class:`CheckerBackend` instance.  Backends are equivalent
    violation-for-violation; only checking speed changes.
    """

    def __init__(self, model: MemoryModel,
                 backend: "str | CheckerBackend" = BACKEND_AUTO) -> None:
        self.model = model
        self.backend = resolve_backend(backend)

    @property
    def backend_name(self) -> str:
        """The concrete backend in use (``"python"`` or ``"matrix"``)."""
        return self.backend.name

    # ------------------------------------------------------------------

    def check_trace(self, threads: list[TestThread], trace: ExecutionTrace,
                    cache: VerdictCache | None = None) -> CheckResult:
        """Build the execution from a trace and check it.

        With a *cache*, the check is memoized by canonical execution
        signature (corrupted traces never touch the cache — there is no
        execution to fingerprint).
        """
        try:
            execution = execution_from_trace(threads, trace)
        except ExecutionBuildError as error:
            return CheckResult(passed=False, violations=[
                Violation(kind="corruption", description=str(error))],
                trace=trace, backend=self.backend.name)
        if cache is None:
            return self.check(execution)
        return self.check_memoized(execution, cache)

    def check_memoized(self, execution: CandidateExecution,
                       cache: VerdictCache) -> CheckResult:
        """Check *execution*, skipping the cycle checks on a passing hit."""
        signature = execution_signature(
            execution, self.model, keep_form=cache.keying == KEYING_CANONICAL)
        cached = cache.lookup(signature.key)
        if cached is not None and cached.passed:
            return CheckResult.ok(execution, backend=self.backend.name)
        started = time.perf_counter()
        result = self.check(execution)
        if cached is None:
            cache.store(signature.key,
                        CachedVerdict(
                            passed=result.passed,
                            violation_kinds=tuple(violation.kind for violation
                                                  in result.violations)),
                        check_seconds=time.perf_counter() - started)
        return result

    def check(self, execution: CandidateExecution) -> CheckResult:
        violations: list[Violation] = []
        violations.extend(self._check_coherence(execution))
        violations.extend(self._check_atomicity(execution))
        violations.extend(self._check_global(execution))
        if violations:
            return CheckResult(passed=False, violations=violations,
                               execution=execution,
                               backend=self.backend.name)
        return CheckResult.ok(execution, backend=self.backend.name)

    # ------------------------------------------------------------------

    def _check_coherence(self, execution: CandidateExecution) -> list[Violation]:
        cycle = self.backend.find_cycle(
            execution.events,
            (execution.po_loc_edges(), execution.rf, execution.co,
             execution.fr))
        if cycle is None:
            return []
        description = ("per-location coherence (uniproc) violated: " +
                       " -> ".join(str(node) for node in cycle))
        return [Violation(kind="coherence", description=description,
                          cycle=tuple(cycle))]

    def _check_atomicity(self, execution: CandidateExecution) -> list[Violation]:
        return atomicity_violations(execution)

    def _check_global(self, execution: CandidateExecution) -> list[Violation]:
        ppo = self.model.preserved_program_order(execution)
        cycle = self.backend.find_cycle(
            execution.events,
            (ppo, execution.co, execution.fr,
             external_rf(execution, self.model)))
        if cycle is None:
            return []
        description = (f"{self.model.name} global happens-before cycle: " +
                       " -> ".join(str(node) for node in cycle))
        return [Violation(kind="ghb", description=description,
                          cycle=tuple(cycle))]
