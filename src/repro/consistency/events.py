"""Memory events of a candidate execution (paper §2.1).

Each memory instruction maps to one event, except read-modify-writes which
map to two (a read and a write) linked as an atomic pair.  The initial value
of every location is modelled as a write event of a fictitious "init"
thread, created on first use (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class EventKind(Enum):
    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


INIT_PID = -1


@dataclass(frozen=True, order=True)
class Event:
    """One memory event.

    ``eid`` is globally unique: ``(op_id, kind)`` for test events and
    ``("init", address)`` for initial writes.  ``po_index`` orders events of
    one thread (the read half of an RMW precedes its write half).
    """

    eid: tuple
    pid: int
    kind: EventKind
    address: int
    value: int
    po_index: int
    is_atomic: bool = False   # part of a read-modify-write pair

    def __hash__(self) -> int:
        # eid is globally unique, so hashing it alone is consistent with
        # the generated field-wise equality while skipping the enum and
        # int fields — events key the relation dicts and the signature
        # interning table, so this hash is on every checker hot path.
        return hash(self.eid)

    @property
    def is_read(self) -> bool:
        return self.kind is EventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is EventKind.WRITE

    @property
    def is_init(self) -> bool:
        return self.pid == INIT_PID

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "init" if self.is_init else f"P{self.pid}#{self.po_index}"
        return f"{self.kind.value}[{tag}] a={self.address:#x} v={self.value}"


def init_write(address: int) -> Event:
    """The initial (value 0) write event for *address*."""
    return Event(eid=("init", address), pid=INIT_PID, kind=EventKind.WRITE,
                 address=address, value=0, po_index=-1)


def read_event(op_id: int, pid: int, po_index: int, address: int, value: int,
               is_atomic: bool = False) -> Event:
    return Event(eid=(op_id, "R"), pid=pid, kind=EventKind.READ,
                 address=address, value=value, po_index=po_index,
                 is_atomic=is_atomic)


def write_event(op_id: int, pid: int, po_index: int, address: int, value: int,
                is_atomic: bool = False) -> Event:
    return Event(eid=(op_id, "W"), pid=pid, kind=EventKind.WRITE,
                 address=address, value=value, po_index=po_index,
                 is_atomic=is_atomic)
