"""Relation utilities: sparse directed graphs over events, cycle search.

At the core of the axiomatic checker is a depth-first search for cycles in
the union of the relevant relations (paper §2.1: "At the core of an
axiomatic model checker ... is a graph-search algorithm").
"""

from __future__ import annotations

from typing import Hashable, Iterable

Node = Hashable
Edge = tuple[Node, Node]


class Relation:
    """A sparse binary relation (directed graph) over hashable nodes."""

    def __init__(self, edges: Iterable[Edge] = ()) -> None:
        self._succ: dict[Node, set[Node]] = {}
        for src, dst in edges:
            self.add(src, dst)

    def add(self, src: Node, dst: Node) -> None:
        self._succ.setdefault(src, set()).add(dst)

    def update(self, other: "Relation") -> None:
        for src, dsts in other._succ.items():
            self._succ.setdefault(src, set()).update(dsts)

    def successors(self, node: Node) -> frozenset[Node]:
        return frozenset(self._succ.get(node, frozenset()))

    def edges(self) -> Iterable[Edge]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def __contains__(self, edge: Edge) -> bool:
        src, dst = edge
        return dst in self._succ.get(src, ())

    def __len__(self) -> int:
        return sum(len(dsts) for dsts in self._succ.values())

    def nodes(self) -> set[Node]:
        found: set[Node] = set(self._succ)
        for dsts in self._succ.values():
            found.update(dsts)
        return found

    @staticmethod
    def union(*relations: "Relation") -> "Relation":
        """Union of any number of relations (zero args → empty relation).

        Always a static union — it was previously declared
        instance-style (``self`` doubling as the first operand), which
        happened to work because every call site used the class, but
        made ``some_relation.union(...)`` silently include the
        receiver.  Now explicit.
        """
        merged = Relation()
        for relation in relations:
            merged.update(relation)
        return merged

    # ------------------------------------------------------------------

    def find_cycle(self) -> list[Node] | None:
        """Return one cycle (as a node list) or None if the relation is acyclic.

        Iterative DFS with colouring; the returned list is the cycle path
        ``[n0, n1, ..., n0]`` used for diagnostics.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Node, int] = {}
        parent: dict[Node, Node] = {}

        # One repr per node up front, then successor sets ordered by that
        # rank — the same deterministic order the old per-push
        # ``sorted(..., key=repr)`` produced, without re-stringifying every
        # successor set on every DFS push (this is per-check hot path).
        rank = {node: position
                for position, node in enumerate(sorted(self.nodes(), key=repr))}
        adjacency = {node: sorted(successors, key=rank.__getitem__)
                     for node, successors in self._succ.items()}

        for start in list(self._succ):
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[Node, Iterable[Node]]] = [
                (start, iter(adjacency.get(start, ())))]
            colour[start] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, WHITE)
                    if state == GREY:
                        cycle = [child, node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(adjacency.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def transitive_closure(self) -> "Relation":
        """Full transitive closure (only used on small relations in tests)."""
        closure = Relation(self.edges())
        changed = True
        while changed:
            changed = False
            for src in list(closure._succ):
                reachable = set(closure._succ[src])
                frontier = set(reachable)
                while frontier:
                    node = frontier.pop()
                    for nxt in closure._succ.get(node, ()):
                        if nxt not in reachable:
                            reachable.add(nxt)
                            frontier.add(nxt)
                if reachable - closure._succ[src]:
                    closure._succ[src] = reachable
                    changed = True
        return closure
