"""A mergeable, bounded verdict cache for collective checking.

:class:`VerdictCache` memoizes checker verdicts keyed by canonical
execution signature (:mod:`repro.consistency.signature`), so a sweep
pays full checker cost only on novel behaviours.  Like
``CoverageCollector`` it is built to *fold across shards*: ``mark()`` /
``delta()`` extract exactly the entries a chunk discovered,
``merge()`` folds states or deltas from other workers in, and
``snapshot()`` / ``restore()`` round-trip the whole cache through
checkpoints.  All state is plain picklable data, so shipments ride the
existing chunk-dispatch and outcome hops unchanged.

The determinism contract (cache-on bit-for-bit ≡ cache-off) is enforced
one layer up, in :class:`~repro.consistency.checker.Checker`: only
*passing* verdicts short-circuit a check (a pass carries no violation
text, so replaying it is byte-identical to recomputing it); a cached
*failing* verdict is always re-checked so the violation descriptions are
regenerated from the actual execution at hand.  The cache itself
therefore only ever changes *when* work happens, never what is reported
— hit/miss/seconds-saved counters are telemetry, excluded from the
determinism contract exactly like wall-clock timings.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.locking import TracedLock, guarded_by, requires_lock

#: Default LRU bound: entries are ~100 pickled bytes, so a full cache
#: snapshots to a couple of MiB — comfortably inside the chunk-dispatch
#: byte budgets.
DEFAULT_CACHE_CAPACITY = 16384

#: Cap on the entries an engine checkpoint carries.  Checkpoint cache
#: state is a warm-start optimization only (verdicts are
#: cache-independent), so a resumed chunk losing cold entries costs at
#: most re-checks — never correctness — while checkpoints stay lean.
CHECKPOINT_STATE_MAX_ENTRIES = 4096

KEYING_DIGEST = "digest"
KEYING_CANONICAL = "canonical"
KEYING_MODES = (KEYING_DIGEST, KEYING_CANONICAL)


@dataclass(frozen=True)
class CachedVerdict:
    """The memoized outcome of one unique execution signature."""

    passed: bool
    violation_kinds: tuple = ()


@dataclass(frozen=True)
class VerdictCacheState:
    """A full, picklable snapshot of a cache (entries oldest-first)."""

    capacity: int
    keying: str
    entries: tuple  # ((key, CachedVerdict), ...) in LRU order
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    failed_refreshes: int = 0
    seconds_saved: float = 0.0
    check_seconds_observed: float = 0.0
    checks_observed: int = 0


@dataclass(frozen=True)
class VerdictCacheDelta:
    """Entries inserted and counters accumulated since a ``mark()``."""

    entries: tuple  # ((key, CachedVerdict), ...) in insertion order
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    failed_refreshes: int = 0
    seconds_saved: float = 0.0
    check_seconds_observed: float = 0.0
    checks_observed: int = 0


@dataclass(frozen=True)
class CacheMark:
    """An opaque position in a cache's insertion/counter history."""

    insert_seq: int
    hits: int
    misses: int
    evictions: int
    failed_refreshes: int
    seconds_saved: float
    check_seconds_observed: float
    checks_observed: int


@guarded_by("_lock", "_entries", "_insert_seq", "hits", "misses",
            "evictions", "failed_refreshes", "seconds_saved",
            "check_seconds_observed", "checks_observed")
class VerdictCache:
    """Bounded LRU of signature → verdict with mergeable delta extraction.

    ``keying`` selects what the checker uses as the key: ``"digest"``
    (compact SHA-256 hex, the default) or ``"canonical"`` (the full
    canonical form — collision-safe, used by tests to prove the digest
    path agrees with it).

    Thread-safe: shipment assembly on the coordinator reads the cache
    while worker outcomes merge deltas in, so every entry/counter access
    goes through ``_lock`` (always acquired *after* the scheduler lock,
    never before — see the hierarchy note in :mod:`repro.locking`).
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY,
                 keying: str = KEYING_DIGEST) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if keying not in KEYING_MODES:
            raise ValueError(f"keying must be one of {KEYING_MODES}, "
                             f"got {keying!r}")
        self.capacity = capacity
        self.keying = keying
        self._lock = TracedLock("verdict_cache")
        # key -> (verdict, insert_seq); OrderedDict order is LRU order.
        self._entries: OrderedDict = OrderedDict()
        self._insert_seq = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.failed_refreshes = 0
        self.seconds_saved = 0.0
        self.check_seconds_observed = 0.0
        self.checks_observed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def inserts(self) -> int:
        """Monotone insertion counter — cheap change-detection for shipments."""
        with self._lock:
            return self._insert_seq

    @requires_lock("_lock")
    def _mean_check_seconds(self) -> float:
        if not self.checks_observed:
            return 0.0
        return self.check_seconds_observed / self.checks_observed

    def lookup(self, key) -> CachedVerdict | None:
        """The cached verdict for *key*, updating counters and LRU order.

        A passing hit is the payoff (the caller may skip the check, so
        the running mean of observed check times accrues to
        ``seconds_saved``); a failing hit counts as ``failed_refreshes``
        because the caller re-checks to regenerate violation context.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            verdict = entry[0]
            if verdict.passed:
                self.hits += 1
                self.seconds_saved += self._mean_check_seconds()
            else:
                self.failed_refreshes += 1
            return verdict

    def store(self, key, verdict: CachedVerdict,
              check_seconds: float = 0.0) -> None:
        """Record the verdict of a fully executed check for *key*."""
        with self._lock:
            self.check_seconds_observed += check_seconds
            self.checks_observed += 1
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = (verdict, self._insert_seq)
            self._insert_seq += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # -- delta / merge / snapshot (the CoverageCollector.merge idiom) -----

    def mark(self) -> CacheMark:
        """A position marker; ``delta(mark)`` returns what happened since."""
        with self._lock:
            return CacheMark(
                insert_seq=self._insert_seq, hits=self.hits,
                misses=self.misses, evictions=self.evictions,
                failed_refreshes=self.failed_refreshes,
                seconds_saved=self.seconds_saved,
                check_seconds_observed=self.check_seconds_observed,
                checks_observed=self.checks_observed)

    def delta(self, mark: CacheMark) -> VerdictCacheDelta:
        """Entries inserted and counters accumulated since *mark*.

        Entries merged in from elsewhere before the mark (e.g. a
        dispatch shipment) carry older sequence numbers and are
        excluded — a chunk's delta is exactly its own discoveries.
        Entries evicted since the mark simply drop out; eviction only
        ever costs downstream re-checks.
        """
        with self._lock:
            fresh = tuple(sorted(
                ((key, entry[0])
                 for key, entry in self._entries.items()
                 if entry[1] >= mark.insert_seq),
                key=lambda item: self._entries[item[0]][1]))
            return VerdictCacheDelta(
                entries=fresh,
                hits=self.hits - mark.hits,
                misses=self.misses - mark.misses,
                evictions=self.evictions - mark.evictions,
                failed_refreshes=(self.failed_refreshes
                                  - mark.failed_refreshes),
                seconds_saved=self.seconds_saved - mark.seconds_saved,
                check_seconds_observed=(self.check_seconds_observed
                                        - mark.check_seconds_observed),
                checks_observed=self.checks_observed - mark.checks_observed)

    def merge(self, other: "VerdictCacheState | VerdictCacheDelta") -> int:
        """Fold entries from a state or delta in; returns entries adopted.

        Idempotent on keys: known keys are left untouched (not even
        LRU-refreshed, so merge order cannot perturb eviction order
        beyond what insertions already do).  Counters are *not* merged —
        they describe where the entries were earned; aggregation across
        shards happens in the scheduler's telemetry fold.
        """
        with self._lock:
            adopted = 0
            for key, verdict in other.entries:
                if key in self._entries:
                    continue
                self._entries[key] = (verdict, self._insert_seq)
                self._insert_seq += 1
                adopted += 1
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            return adopted

    def snapshot(self, max_entries: int | None = None) -> VerdictCacheState:
        """A picklable state (optionally only the *max_entries* newest)."""
        with self._lock:
            entries = tuple((key, entry[0])
                            for key, entry in self._entries.items())
            if max_entries is not None and len(entries) > max_entries:
                entries = entries[len(entries) - max_entries:]
            return VerdictCacheState(
                capacity=self.capacity, keying=self.keying,
                entries=entries, hits=self.hits, misses=self.misses,
                evictions=self.evictions,
                failed_refreshes=self.failed_refreshes,
                seconds_saved=self.seconds_saved,
                check_seconds_observed=self.check_seconds_observed,
                checks_observed=self.checks_observed)

    def restore(self, state: VerdictCacheState) -> None:
        """Replace all cache contents and counters with *state*."""
        with self._lock:
            self.capacity = state.capacity
            self.keying = state.keying
            self._entries = OrderedDict()
            self._insert_seq = 0
            for key, verdict in state.entries:
                self._entries[key] = (verdict, self._insert_seq)
                self._insert_seq += 1
            self.hits = state.hits
            self.misses = state.misses
            self.evictions = state.evictions
            self.failed_refreshes = state.failed_refreshes
            self.seconds_saved = state.seconds_saved
            self.check_seconds_observed = state.check_seconds_observed
            self.checks_observed = state.checks_observed

    @classmethod
    def from_state(cls, state: VerdictCacheState) -> "VerdictCache":
        cache = cls(capacity=state.capacity, keying=state.keying)
        cache.restore(state)
        return cache

    def stats(self) -> dict:
        """Telemetry view: entry count, hit-rate and seconds saved."""
        with self._lock:
            lookups = self.hits + self.misses + self.failed_refreshes
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "failed_refreshes": self.failed_refreshes,
                "evictions": self.evictions,
                "hit_rate": (round(self.hits / lookups, 4)
                             if lookups else 0.0),
                "seconds_saved": round(self.seconds_saved, 6),
            }
