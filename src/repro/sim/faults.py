"""Fault (bug) injection for the 11 studied bugs (paper §5.3).

Each fault is a named switch consulted by the coherence-protocol and
pipeline code at the exact code path the paper describes.  A ``FaultSet``
holds the set of active faults for a simulated system; the default is an
empty set (correct system).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ProtocolError(RuntimeError):
    """Raised by a coherence controller on an invalid (state, event) pair.

    The paper's MESI+PUTX-Race bug does not manifest as an MCM violation but
    is caught by Ruby as an invalid transition; this exception plays the
    same role and is treated by the campaign runner as a found bug.
    """

    def __init__(self, controller: str, state: str, event: str,
                 detail: str = "") -> None:
        message = f"invalid transition in {controller}: ({state}, {event})"
        if detail:
            message += f" - {detail}"
        super().__init__(message)
        self.controller = controller
        self.state = state
        self.event = event


class Fault(Enum):
    """The 11 studied bugs.  Names follow paper §5.3."""

    MESI_LQ_IS_INV = "MESI,LQ+IS,Inv"
    MESI_LQ_SM_INV = "MESI,LQ+SM,Inv"
    MESI_LQ_E_INV = "MESI,LQ+E,Inv"
    MESI_LQ_M_INV = "MESI,LQ+M,Inv"
    MESI_LQ_S_REPLACEMENT = "MESI,LQ+S,Replacement"
    MESI_PUTX_RACE = "MESI+PUTX-Race"
    MESI_REPLACE_RACE = "MESI+Replace-Race"
    TSOCC_NO_EPOCH_IDS = "TSO-CC+no-epoch-ids"
    TSOCC_COMPARE = "TSO-CC+compare"
    LQ_NO_TSO = "LQ+no-TSO"
    SQ_NO_FIFO = "SQ+no-FIFO"

    @property
    def paper_name(self) -> str:
        return self.value

    @property
    def protocol(self) -> str:
        """Coherence protocol this fault applies to ("MESI", "TSO_CC", "ANY")."""
        if self.name.startswith("MESI"):
            return "MESI"
        if self.name.startswith("TSOCC"):
            return "TSO_CC"
        return "ANY"

    @property
    def is_real_gem5_bug(self) -> bool:
        """Bugs marked '*' in the paper (real bugs found in gem5)."""
        return self in (Fault.MESI_LQ_IS_INV, Fault.MESI_LQ_SM_INV,
                        Fault.MESI_PUTX_RACE, Fault.LQ_NO_TSO)

    @property
    def needs_evictions(self) -> bool:
        """Bugs only reachable with a large (8KB) test memory in the paper."""
        return self in (Fault.MESI_LQ_S_REPLACEMENT, Fault.MESI_PUTX_RACE,
                        Fault.MESI_REPLACE_RACE)


ALL_FAULTS: tuple[Fault, ...] = tuple(Fault)


@dataclass(frozen=True)
class FaultSet:
    """Immutable set of active faults for one simulated system."""

    active: frozenset[Fault] = frozenset()

    @classmethod
    def none(cls) -> "FaultSet":
        return cls(frozenset())

    @classmethod
    def of(cls, *faults: Fault) -> "FaultSet":
        return cls(frozenset(faults))

    def enabled(self, fault: Fault) -> bool:
        return fault in self.active

    def __contains__(self, fault: Fault) -> bool:
        return fault in self.active

    def __iter__(self):
        return iter(sorted(self.active, key=lambda f: f.name))

    def __len__(self) -> int:
        return len(self.active)

    def compatible_protocol(self) -> str | None:
        """Return the protocol required by the active faults, if any.

        Raises ``ValueError`` when faults of two different protocols are
        combined (that combination is meaningless).
        """
        protocols = {fault.protocol for fault in self.active} - {"ANY"}
        if len(protocols) > 1:
            raise ValueError(
                f"faults require conflicting protocols: {sorted(protocols)}")
        return protocols.pop() if protocols else None


def fault_by_paper_name(name: str) -> Fault:
    """Look up a fault by its paper name (e.g. ``"MESI,LQ+IS,Inv"``)."""
    for fault in Fault:
        if fault.value == name:
            return fault
    raise KeyError(f"unknown fault {name!r}")
