"""On-chip interconnect model.

The paper uses GARNET (a 2D mesh).  For MCM verification what matters is
that message delivery latency varies and that messages on different virtual
networks are *not* ordered with respect to each other - in particular an
Invalidation can overtake a Data response that was sent earlier, which is
exactly the race behind the IS-state "Peekaboo" bugs.  This module models a
set of named endpoints exchanging messages whose latency is drawn from a
configurable range using the kernel RNG, with no cross-message ordering
guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.kernel import SimKernel


@dataclass
class Message:
    """A coherence/network message."""

    kind: str
    src: str
    dst: str
    line_address: int
    payload: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.kind} {self.src}->{self.dst} "
                f"line={self.line_address:#x} {self.payload}")


class Interconnect:
    """Delivers messages between registered endpoints with random latency."""

    def __init__(self, kernel: SimKernel, latency_min: int, latency_max: int) -> None:
        if latency_min < 1 or latency_min > latency_max:
            raise ValueError("invalid network latency range")
        self.kernel = kernel
        self.latency_min = latency_min
        self.latency_max = latency_max
        self._endpoints: dict[str, Callable[[Message], None]] = {}
        self.messages_sent = 0

    def register(self, name: str, handler: Callable[[Message], None]) -> None:
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        self._endpoints[name] = handler

    def unregister_all(self) -> None:
        self._endpoints.clear()

    def send(self, message: Message, extra_latency: int = 0) -> None:
        """Deliver *message* to its destination after a random latency."""
        if message.dst not in self._endpoints:
            raise KeyError(f"unknown endpoint {message.dst!r}")
        self.messages_sent += 1
        latency = self.kernel.jitter(self.latency_min, self.latency_max)
        handler = self._endpoints[message.dst]
        self.kernel.schedule(latency + extra_latency,
                             lambda m=message: handler(m))

    def endpoints(self) -> tuple[str, ...]:
        return tuple(self._endpoints)
