"""Load-queue squash rule and store buffer used by the core model.

These two pieces are split out of the core engine because they carry the
TSO-critical behaviour (and two of the studied bug sites):

* :class:`LoadQueueRule` implements the rule quoted in paper §5.3: *"if
  there exist any unperformed older reads and an invalidation is received,
  all newer reads are retried"*.  The LQ+no-TSO bug disables it.
* :class:`StoreBuffer` drains committed stores to the memory system in FIFO
  order, which is what yields TSO's write->write ordering.  The SQ+no-FIFO
  bug drains out of order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.sim.faults import Fault, FaultSet
from repro.sim.testprogram import TestOp


@dataclass
class RobEntry:
    """One in-flight operation in the reorder buffer."""

    op: TestOp
    performed: bool = False
    committed: bool = False
    value: int | None = None
    overwritten: int | None = None
    generation: int = 0
    request_outstanding: bool = False
    delay_remaining: int = 0
    rmw_started: bool = False

    @property
    def is_load(self) -> bool:
        return self.op.kind.is_load


class LoadQueueRule:
    """Applies the TSO load-queue invalidation/squash rule."""

    def __init__(self, faults: FaultSet) -> None:
        self.faults = faults
        self.squashes = 0

    def apply(self, rob: Sequence[RobEntry]) -> list[RobEntry]:
        """Return the entries that must be squashed (retried).

        Called when the L1 notifies the core that a line was invalidated,
        evicted or self-invalidated.  The rule: if an older read is still
        unperformed, every read younger than the oldest unperformed read
        that has already bound a value - or has a request in flight whose
        value was bound before the invalidation - must be retried.
        Including in-flight requests closes the window in which a hit's
        value was read from the cache but the load is not yet marked
        performed when the invalidation is processed.
        """
        if self.faults.enabled(Fault.LQ_NO_TSO):
            # BUG SITE (LQ+no-TSO): speculative loads are never squashed on
            # a forwarded invalidation.
            return []
        oldest_unperformed: int | None = None
        for index, entry in enumerate(rob):
            if entry.is_load and not entry.performed and not entry.committed:
                oldest_unperformed = index
                break
        if oldest_unperformed is None:
            return []
        to_squash = [entry for entry in list(rob)[oldest_unperformed + 1:]
                     if entry.is_load and not entry.committed
                     and (entry.performed or entry.request_outstanding)]
        self.squashes += len(to_squash)
        return to_squash


@dataclass
class StoreBufferEntry:
    """A committed store (or cache flush) waiting to become globally visible."""

    op: TestOp
    draining: bool = False


class StoreBuffer:
    """Bounded FIFO store buffer (the SQ of the paper)."""

    def __init__(self, capacity: int, faults: FaultSet, rng: random.Random) -> None:
        self.capacity = capacity
        self.faults = faults
        self.rng = rng
        self.entries: list[StoreBufferEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self.entries

    def push(self, op: TestOp) -> None:
        if self.full:
            raise RuntimeError("store buffer overflow (commit must stall)")
        self.entries.append(StoreBufferEntry(op))

    def forward_value(self, address: int) -> int | None:
        """Youngest not-yet-drained store value for *address* (TSO forwarding)."""
        for entry in reversed(self.entries):
            if entry.op.kind.writes_memory and entry.op.address == address:
                return entry.op.value
        return None

    def next_to_drain(self) -> StoreBufferEntry | None:
        """Pick the entry to drain next (None if busy or empty)."""
        if not self.entries or any(entry.draining for entry in self.entries):
            return None
        if self.faults.enabled(Fault.SQ_NO_FIFO) and len(self.entries) > 1:
            # BUG SITE (SQ+no-FIFO): drain an arbitrary entry instead of the
            # oldest, making writes visible out of program order.
            return self.rng.choice(self.entries)
        return self.entries[0]

    def complete(self, entry: StoreBufferEntry) -> None:
        self.entries.remove(entry)
