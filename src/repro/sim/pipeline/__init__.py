"""Out-of-order core model with a TSO load/store queue."""

from repro.sim.pipeline.core import CoreEngine
from repro.sim.pipeline.lsq import LoadQueueRule, StoreBuffer

__all__ = ["CoreEngine", "LoadQueueRule", "StoreBuffer"]
