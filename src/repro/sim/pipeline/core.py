"""Out-of-order core model executing one test thread.

The model captures exactly the microarchitectural behaviour the paper's
bugs depend on, nothing more:

* a ROB-limited instruction window with in-order commit;
* loads that may *perform* speculatively out of program order, combined
  with the TSO load-queue squash rule applied on invalidation notifications
  from the L1 (see :class:`repro.sim.pipeline.lsq.LoadQueueRule`);
* store->load forwarding from older, not yet globally visible stores;
* a FIFO store buffer draining committed stores one at a time (TSO), with
  the SQ+no-FIFO bug draining out of order;
* read-modify-writes acting as atomic operations and full fences (as on
  x86, where locked RMWs imply mfence);
* cache flushes and constant delays.

Timing is approximate (issue width, hit/miss latencies, random perturbation
come from the memory system); functional behaviour - which value every load
observes - is exact.
"""

from __future__ import annotations

import random

from repro.sim.coherence.base import InvalidationReason
from repro.sim.config import SystemConfig
from repro.sim.faults import FaultSet
from repro.sim.kernel import SimKernel
from repro.sim.pipeline.lsq import LoadQueueRule, RobEntry, StoreBuffer, StoreBufferEntry
from repro.sim.testprogram import OpKind, TestOp, TestThread
from repro.sim.trace import ExecutionTrace

_COMMIT_WIDTH = 4
_IDLE_TICK = 25


class CoreEngine:
    """Drives one test thread through the memory system."""

    def __init__(self, core_id: int, kernel: SimKernel, l1: object,
                 thread: TestThread, trace: ExecutionTrace,
                 config: SystemConfig, faults: FaultSet,
                 rng: random.Random, start_tick: int = 0) -> None:
        self.core_id = core_id
        self.kernel = kernel
        self.l1 = l1
        self.thread = thread
        self.trace = trace
        self.config = config
        self.faults = faults
        self.rng = rng
        self.start_tick = start_tick
        self.rob: list[RobEntry] = []
        self.store_buffer = StoreBuffer(config.lsq_entries, faults, rng)
        self.lq_rule = LoadQueueRule(faults)
        self.next_op_index = 0
        self.loads_issued = 0
        self.loads_squashed = 0
        self._tick_scheduled = False
        self._started = False

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return (self._started and self.next_op_index >= len(self.thread.ops)
                and not self.rob and self.store_buffer.empty)

    def start(self) -> None:
        self._started = True
        if not self.thread.ops:
            return
        self.kernel.schedule_at(max(self.start_tick, self.kernel.now),
                                self._tick)
        self._tick_scheduled = True

    def _wake(self) -> None:
        if not self._tick_scheduled and not self.done:
            self._tick_scheduled = True
            self.kernel.schedule(1, self._tick)

    # ------------------------------------------------------------------
    # Invalidation notifications from the L1 (the LQ squash rule)
    # ------------------------------------------------------------------

    def on_invalidation(self, line_address: int,
                        reason: InvalidationReason) -> None:
        squashed = self.lq_rule.apply(self.rob)
        for entry in squashed:
            entry.performed = False
            entry.value = None
            entry.generation += 1
            entry.request_outstanding = False
            self.loads_squashed += 1
        if squashed:
            self._wake()

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._tick_scheduled = False
        progress = False
        progress |= self._issue_stage()
        progress |= self._execute_stage()
        progress |= self._commit_stage()
        progress |= self._drain_stage()
        if self.done:
            return
        delay = 1 if progress or self._issue_possible() else _IDLE_TICK
        self._tick_scheduled = True
        self.kernel.schedule(delay, self._tick)

    def _issue_possible(self) -> bool:
        return (self.next_op_index < len(self.thread.ops)
                and len(self.rob) < self.config.rob_entries)

    def _issue_stage(self) -> bool:
        issued = 0
        while issued < self.config.issue_width and self._issue_possible():
            op = self.thread.ops[self.next_op_index]
            entry = RobEntry(op=op, delay_remaining=op.delay)
            self.rob.append(entry)
            self.next_op_index += 1
            issued += 1
        return issued > 0

    def _execute_stage(self) -> bool:
        progress = False
        for index, entry in enumerate(self.rob):
            if entry.op.kind.is_load:
                if entry.performed or entry.committed or entry.request_outstanding:
                    continue
                if not self._load_may_execute(index, entry):
                    continue
                progress |= self._execute_load(entry, index)
            elif entry.op.kind is OpKind.RMW:
                progress |= self._maybe_start_rmw(index, entry)
        return progress

    def _load_may_execute(self, index: int, entry: RobEntry) -> bool:
        for older in self.rob[:index]:
            if older.op.kind is OpKind.RMW and not older.committed:
                return False  # locked RMW acts as a fence
        if entry.op.kind is OpKind.READ_ADDR_DP:
            for older in self.rob[:index]:
                if older.op.kind.is_load and not older.performed:
                    return False  # address dependency on older reads
        return True

    def _execute_load(self, entry: RobEntry, index: int) -> bool:
        address = entry.op.address
        assert address is not None
        forwarded = self._forwarded_value(index, address)
        if forwarded is not None:
            entry.performed = True
            entry.value = forwarded
            return True
        entry.request_outstanding = True
        generation = entry.generation
        self.loads_issued += 1

        def on_value(value: int, entry: RobEntry = entry,
                     generation: int = generation) -> None:
            if entry.committed or entry.generation != generation:
                return  # stale response for a squashed/retried load
            entry.request_outstanding = False
            entry.performed = True
            entry.value = value
            self._wake()

        self.l1.load(address, on_value)
        return True

    def _forwarded_value(self, index: int, address: int) -> int | None:
        """TSO store->load forwarding from older, not yet visible stores."""
        for older in reversed(self.rob[:index]):
            if older.op.kind.writes_memory and older.op.address == address:
                return older.op.value
        return self.store_buffer.forward_value(address)

    def _maybe_start_rmw(self, index: int, entry: RobEntry) -> bool:
        if entry.rmw_started or entry.performed or index != 0:
            return False
        if not self.store_buffer.empty:
            return False  # fence: drain the store buffer first
        entry.rmw_started = True
        address = entry.op.address
        assert address is not None

        def on_done(read_value: int, overwritten: int,
                    entry: RobEntry = entry) -> None:
            entry.performed = True
            entry.value = read_value
            entry.overwritten = overwritten
            self._wake()

        self.l1.rmw(address, entry.op.value, on_done)
        return True

    def _commit_stage(self) -> bool:
        committed = 0
        while self.rob and committed < _COMMIT_WIDTH:
            head = self.rob[0]
            kind = head.op.kind
            if kind.is_load:
                if not head.performed:
                    break
                assert head.value is not None and head.op.address is not None
                self.trace.record_read(head.op.op_id, self.core_id,
                                       head.op.address, head.value)
            elif kind is OpKind.WRITE or kind is OpKind.CACHE_FLUSH:
                if self.store_buffer.full:
                    break
                self.store_buffer.push(head.op)
                if kind is OpKind.WRITE:
                    self.trace.record_commit(head.op.op_id, self.core_id)
            elif kind is OpKind.RMW:
                if not head.performed:
                    break
                assert (head.value is not None and head.overwritten is not None
                        and head.op.address is not None)
                self.trace.record_rmw(head.op.op_id, self.core_id,
                                      head.op.address, head.value,
                                      head.op.value, head.overwritten)
            elif kind is OpKind.DELAY and head.delay_remaining > 0:
                head.delay_remaining -= 1
                committed += 1
                break
            head.committed = True
            self.rob.pop(0)
            committed += 1
        return committed > 0

    def _drain_stage(self) -> bool:
        entry = self.store_buffer.next_to_drain()
        if entry is None:
            return False
        entry.draining = True
        op = entry.op
        assert op.address is not None
        if op.kind is OpKind.WRITE:

            def on_written(overwritten: int, entry: StoreBufferEntry = entry,
                           op: TestOp = op) -> None:
                # Two-phase path: commit_order was recorded at commit
                # time (program order), long before this serialisation.
                self.trace.record_write(op.op_id, self.core_id, op.address,
                                        op.value, overwritten, commit=False)
                self.store_buffer.complete(entry)
                self._wake()

            self.l1.store(op.address, op.value, on_written)
        else:  # cache flush

            def on_flushed(entry: StoreBufferEntry = entry) -> None:
                self.store_buffer.complete(entry)
                self._wake()

            self.l1.flush(op.address, on_flushed)
        return True
