"""MESI L1 cache controller (blocking-directory protocol, L1 side).

The controller implements the stable states I/S/E/M plus the transient
states relevant to the studied bugs:

* ``IS_D``   - load miss outstanding (GetS sent, waiting for data)
* ``IS_D_I`` - invalidation sunk while the GetS was outstanding (the
  "Peekaboo" window: when data arrives it may satisfy loads that were
  already waiting, but the invalidation must be forwarded to the load
  queue so that speculatively performed younger loads are squashed)
* ``IM_D``   - store miss outstanding (GetM sent)
* ``SM_D``   - upgrade outstanding (GetM sent while holding S data)
* ``MI_A`` / ``EI_A`` / ``SI_A`` / ``II_A`` - writeback/eviction awaiting
  the directory's WBAck.

Every (state, event) pair executed is recorded as structural coverage.
The injected MESI bugs of paper §5.3 live at the marked call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.cache import CacheArray, CacheLine
from repro.sim.coherence.base import (CoherenceController, InvalidationListener,
                                      InvalidationReason)
from repro.sim.config import SystemConfig
from repro.sim.coverage import CoverageCollector
from repro.sim.faults import Fault, FaultSet
from repro.sim.interconnect import Interconnect, Message
from repro.sim.kernel import SimKernel

# States that reserve a way in the cache array.
_STABLE_STATES = ("S", "E", "M")
_TRANSIENT_ARRAY_STATES = ("IS_D", "IS_D_I", "IM_D", "SM_D")
# States of lines that have been removed from the array and are completing
# an eviction handshake.
_EVICTING_STATES = ("MI_A", "EI_A", "SI_A", "II_A")

_RETRY_DELAY = 8


@dataclass
class _Mshr:
    """Bookkeeping for one outstanding miss (one line address)."""

    kind: str                                   # "GetS" or "GetM"
    loads_before_inv: list[Callable[[int], None]] = field(default_factory=list)
    loads_after_inv: list[tuple[int, Callable[[int], None]]] = field(default_factory=list)
    pending_stores: list[tuple[int, int, Callable[[int], None]]] = field(default_factory=list)
    pending_rmws: list[tuple[int, int, Callable[[int, int], None]]] = field(default_factory=list)
    deferred_msgs: list[Message] = field(default_factory=list)
    load_addresses: list[tuple[int, Callable[[int], None]]] = field(default_factory=list)


@dataclass
class _Evicting:
    """A line undergoing a writeback handshake (off the array)."""

    state: str
    words: dict[int, int] = field(default_factory=dict)


class MesiL1Cache(CoherenceController):
    """Private L1 data cache with a MESI protocol."""

    controller_kind = "L1"

    def __init__(self, core_id: int, kernel: SimKernel, network: Interconnect,
                 config: SystemConfig, coverage: CoverageCollector,
                 faults: FaultSet, directory_name: str = "dir") -> None:
        super().__init__(f"l1_{core_id}", kernel, network, coverage, faults)
        self.core_id = core_id
        self.config = config
        self.directory_name = directory_name
        self.array = CacheArray(config.l1)
        self.stride = 16
        self._mshrs: dict[int, _Mshr] = {}
        self._evicting: dict[int, _Evicting] = {}
        self._deferred_cpu: dict[int, list[Callable[[], None]]] = {}
        self._pending_retries = 0
        self.invalidation_listener: InvalidationListener | None = None

    # ------------------------------------------------------------------
    # CPU-side interface
    # ------------------------------------------------------------------

    def load(self, address: int, callback: Callable[[int], None]) -> None:
        self._cpu_request(lambda: self._do_load(address, callback),
                          self.array.line_address(address))

    def store(self, address: int, value: int,
              callback: Callable[[int], None]) -> None:
        self._cpu_request(lambda: self._do_store(address, value, callback),
                          self.array.line_address(address))

    def rmw(self, address: int, value: int,
            callback: Callable[[int, int], None]) -> None:
        self._cpu_request(lambda: self._do_rmw(address, value, callback),
                          self.array.line_address(address))

    def flush(self, address: int, callback: Callable[[], None]) -> None:
        self._cpu_request(lambda: self._do_flush(address, callback),
                          self.array.line_address(address))

    def quiescent(self) -> bool:
        return (not self._mshrs and not self._evicting
                and not self._deferred_cpu and self._pending_retries == 0)

    # ------------------------------------------------------------------
    # Request dispatch helpers
    # ------------------------------------------------------------------

    def _cpu_request(self, action: Callable[[], None], line_address: int) -> None:
        """Run a CPU request now, or defer it while the line is evicting."""
        if line_address in self._evicting:
            self._deferred_cpu.setdefault(line_address, []).append(action)
            return
        action()

    def _retry_later(self, action: Callable[[], None]) -> None:
        self._pending_retries += 1

        def run() -> None:
            self._pending_retries -= 1
            action()

        self.kernel.schedule(_RETRY_DELAY, run)

    def _notify_lq(self, line_address: int, reason: InvalidationReason) -> None:
        if self.invalidation_listener is not None:
            self.invalidation_listener(line_address, reason)

    def _make_room(self, line_address: int) -> bool:
        """Ensure the target set has a free way; returns False to retry later."""
        if not self.array.needs_victim(line_address):
            return True
        victim = self.array.select_victim(
            line_address, exclude_states=_TRANSIENT_ARRAY_STATES)
        if victim is None:
            return False
        self._evict_line(victim, InvalidationReason.REPLACEMENT)
        return True

    def _evict_line(self, line: CacheLine, reason: InvalidationReason) -> None:
        """Start the eviction handshake for a stable line."""
        line_address = line.line_address
        self.array.evict(line_address)
        if line.state == "M":
            self.record_transition("M", "Replacement")
            self._evicting[line_address] = _Evicting("MI_A", dict(line.words))
            self.send("PutM", self.directory_name, line_address,
                      words=dict(line.words), sender=self.name)
            self._notify_lq(line_address, reason)
        elif line.state == "E":
            self.record_transition("E", "Replacement")
            self._evicting[line_address] = _Evicting("EI_A", dict(line.words))
            self.send("PutE", self.directory_name, line_address, sender=self.name)
            self._notify_lq(line_address, reason)
        elif line.state == "S":
            self.record_transition("S", "Replacement")
            self._evicting[line_address] = _Evicting("SI_A", dict(line.words))
            self.send("PutS", self.directory_name, line_address, sender=self.name)
            suppress = (reason is InvalidationReason.REPLACEMENT
                        and self.faults.enabled(Fault.MESI_LQ_S_REPLACEMENT))
            if not suppress:
                # BUG SITE (MESI,LQ+S,Replacement): the correct protocol
                # notifies the LQ on an S-state replacement as well.
                self._notify_lq(line_address, reason)
        else:  # pragma: no cover - guarded by exclude_states
            self.invalid_transition(line.state, "Replacement")

    # ------------------------------------------------------------------
    # CPU request handlers
    # ------------------------------------------------------------------

    def _do_load(self, address: int, callback: Callable[[int], None]) -> None:
        line_address = self.array.line_address(address)
        line = self.array.lookup(address)
        if line is None:
            if not self._make_room(line_address):
                self._retry_later(lambda: self._do_load(address, callback))
                return
            self.record_transition("I", "Load")
            self.array.allocate(line_address, "IS_D")
            mshr = _Mshr(kind="GetS")
            mshr.load_addresses.append((address, callback))
            mshr.loads_before_inv.append(
                lambda words, a=address, cb=callback: cb(words.get(a, 0)))
            self._mshrs[line_address] = mshr
            self.send("GetS", self.directory_name, line_address, sender=self.name)
            return
        state = line.state
        if state in ("S", "E", "M", "SM_D"):
            hit_state = "SM_D" if state == "SM_D" else state
            self.record_transition(hit_state, "Load")
            self.kernel.schedule(self.config.l1.hit_latency,
                                 lambda: callback(line.read_word(address)))
            return
        mshr = self._mshrs[line_address]
        if state == "IS_D":
            self.record_transition("IS_D", "Load")
            mshr.load_addresses.append((address, callback))
            mshr.loads_before_inv.append(
                lambda words, a=address, cb=callback: cb(words.get(a, 0)))
        elif state == "IS_D_I":
            self.record_transition("IS_D_I", "Load")
            mshr.loads_after_inv.append((address, callback))
        elif state == "IM_D":
            self.record_transition("IM_D", "Load")
            mshr.loads_before_inv.append(
                lambda words, a=address, cb=callback: cb(words.get(a, 0)))
        else:  # pragma: no cover
            self.invalid_transition(state, "Load")

    def _do_store(self, address: int, value: int,
                  callback: Callable[[int], None]) -> None:
        line_address = self.array.line_address(address)
        line = self.array.lookup(address)
        if line is None:
            if not self._make_room(line_address):
                self._retry_later(lambda: self._do_store(address, value, callback))
                return
            self.record_transition("I", "Store")
            self.array.allocate(line_address, "IM_D")
            mshr = _Mshr(kind="GetM")
            mshr.pending_stores.append((address, value, callback))
            self._mshrs[line_address] = mshr
            self.send("GetM", self.directory_name, line_address, sender=self.name)
            return
        state = line.state
        if state == "M":
            self.record_transition("M", "Store")
            overwritten = line.write_word(address, value)
            self.kernel.schedule(self.config.l1.hit_latency,
                                 lambda: callback(overwritten))
        elif state == "E":
            self.record_transition("E", "Store")
            line.state = "M"
            overwritten = line.write_word(address, value)
            self.kernel.schedule(self.config.l1.hit_latency,
                                 lambda: callback(overwritten))
        elif state == "S":
            self.record_transition("S", "Store")
            line.state = "SM_D"
            mshr = _Mshr(kind="GetM")
            mshr.pending_stores.append((address, value, callback))
            self._mshrs[line_address] = mshr
            self.send("GetM", self.directory_name, line_address, sender=self.name)
        elif state in ("IS_D", "IS_D_I", "IM_D", "SM_D"):
            self.record_transition(state, "Store")
            self._mshrs[line_address].pending_stores.append((address, value, callback))
        else:  # pragma: no cover
            self.invalid_transition(state, "Store")

    def _do_rmw(self, address: int, value: int,
                callback: Callable[[int, int], None]) -> None:
        line_address = self.array.line_address(address)
        line = self.array.lookup(address)
        if line is None:
            if not self._make_room(line_address):
                self._retry_later(lambda: self._do_rmw(address, value, callback))
                return
            self.record_transition("I", "RMW")
            self.array.allocate(line_address, "IM_D")
            mshr = _Mshr(kind="GetM")
            mshr.pending_rmws.append((address, value, callback))
            self._mshrs[line_address] = mshr
            self.send("GetM", self.directory_name, line_address, sender=self.name)
            return
        state = line.state
        if state in ("M", "E"):
            self.record_transition(state, "RMW")
            line.state = "M"
            read_value = line.read_word(address)
            overwritten = line.write_word(address, value)
            self.kernel.schedule(self.config.l1.hit_latency,
                                 lambda: callback(read_value, overwritten))
        elif state == "S":
            self.record_transition("S", "RMW")
            line.state = "SM_D"
            mshr = _Mshr(kind="GetM")
            mshr.pending_rmws.append((address, value, callback))
            self._mshrs[line_address] = mshr
            self.send("GetM", self.directory_name, line_address, sender=self.name)
        elif state in ("IS_D", "IS_D_I", "IM_D", "SM_D"):
            self.record_transition(state, "RMW")
            self._mshrs[line_address].pending_rmws.append((address, value, callback))
        else:  # pragma: no cover
            self.invalid_transition(state, "RMW")

    def _do_flush(self, address: int, callback: Callable[[], None]) -> None:
        line_address = self.array.line_address(address)
        line = self.array.lookup(address)
        if line is None or line.state in _TRANSIENT_ARRAY_STATES:
            self.record_transition("I", "Flush")
            callback()
            return
        self.record_transition(line.state, "Flush")
        self._evict_line(line, InvalidationReason.FLUSH)
        callback()

    # ------------------------------------------------------------------
    # Network-side events
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        kind = message.kind
        if kind in ("Data", "DataE", "DataM"):
            self._on_data(message)
        elif kind == "Inv":
            self._on_inv(message)
        elif kind in ("FwdGetS", "FwdGetM", "Recall"):
            self._on_forward(message)
        elif kind == "WBAck":
            self._on_wback(message)
        else:  # pragma: no cover
            self.invalid_transition("?", kind, f"unexpected message {message}")

    # -- data responses ----------------------------------------------------

    def _on_data(self, message: Message) -> None:
        line_address = message.line_address
        words: dict[int, int] = dict(message.payload.get("words", {}))
        line = self.array.lookup(line_address, touch=False)
        if line is None or line_address not in self._mshrs:
            self.invalid_transition("I", message.kind, "data without MSHR")
            return
        mshr = self._mshrs.pop(line_address)
        state = line.state

        if state in ("IS_D",) and message.kind in ("Data", "DataE"):
            self.record_transition(state, message.kind)
            line.words = words
            line.state = "S" if message.kind == "Data" else "E"
            self._satisfy_loads(mshr.loads_before_inv, line.words)
            # Forwards that overtook this grant (we were made owner before the
            # data arrived) can now be serviced from the stable state.
            for deferred in list(mshr.deferred_msgs):
                self.handle_message(deferred)
            self._redispatch_writes(mshr)
            return

        if state == "IS_D_I" and message.kind in ("Data", "DataE"):
            self.record_transition("IS_D_I", message.kind)
            self.array.evict(line_address)
            for deferred in list(mshr.deferred_msgs):
                self.handle_message(deferred)
            if self.faults.enabled(Fault.MESI_LQ_IS_INV):
                # BUG SITE (MESI,LQ+IS,Inv): the buggy protocol hands the
                # (already invalidated, possibly stale) data to the waiting
                # loads without telling the load queue that the line was
                # invalidated - younger/older loads can then observe a
                # read->read reordering forbidden by TSO.
                self._satisfy_loads(mshr.loads_before_inv, words)
                for address, callback in mshr.loads_after_inv:
                    self.kernel.schedule(
                        1, lambda a=address, cb=callback: self.load(a, cb))
                self._redispatch_writes(mshr)
                return
            # Correct behaviour: forward the invalidation to the LQ together
            # with the data response and replay the waiting loads so that
            # they re-request fresh data (no stale binding).
            self._notify_lq(line_address, InvalidationReason.INVALIDATION)
            for waiter_address, waiter_cb in mshr.load_addresses:
                self.kernel.schedule(
                    1, lambda a=waiter_address, cb=waiter_cb: self.load(a, cb))
            for address, callback in mshr.loads_after_inv:
                self.kernel.schedule(
                    1, lambda a=address, cb=callback: self.load(a, cb))
            self._redispatch_writes(mshr)
            return

        if state in ("IM_D", "SM_D") and message.kind in ("DataM", "Data"):
            self.record_transition(state, "DataM")
            if state == "IM_D" or not line.words:
                line.words = words
            self._satisfy_loads(mshr.loads_before_inv, line.words)
            line.state = "M"
            self._apply_writes(line, mshr)
            deferred = list(mshr.deferred_msgs)
            for msg in deferred:
                self.handle_message(msg)
            return

        self.invalid_transition(state, message.kind)

    def _satisfy_loads(self, waiters: list[Callable[[dict[int, int]], None]],
                       words: dict[int, int]) -> None:
        for waiter in waiters:
            self.kernel.schedule(self.config.l1.hit_latency,
                                 lambda w=waiter: w(dict(words)))

    def _apply_writes(self, line: CacheLine, mshr: _Mshr) -> None:
        for address, value, callback in mshr.pending_stores:
            overwritten = line.write_word(address, value)
            self.kernel.schedule(1, lambda cb=callback, o=overwritten: cb(o))
        for address, value, callback in mshr.pending_rmws:
            read_value = line.read_word(address)
            overwritten = line.write_word(address, value)
            self.kernel.schedule(
                1, lambda cb=callback, r=read_value, o=overwritten: cb(r, o))

    def _redispatch_writes(self, mshr: _Mshr) -> None:
        """After a read fill, re-run queued writes (they will upgrade)."""
        for address, value, callback in mshr.pending_stores:
            self.kernel.schedule(1, lambda a=address, v=value, cb=callback:
                                 self.store(a, v, cb))
        for address, value, callback in mshr.pending_rmws:
            self.kernel.schedule(1, lambda a=address, v=value, cb=callback:
                                 self.rmw(a, v, cb))

    def _redispatch_after_invalidation(self, line_address: int, mshr: _Mshr) -> None:
        for address, callback in mshr.loads_after_inv:
            self.kernel.schedule(1, lambda a=address, cb=callback: self.load(a, cb))
        self._redispatch_writes(mshr)
        self._run_deferred_cpu(line_address)

    # -- invalidations ------------------------------------------------------

    def _on_inv(self, message: Message) -> None:
        line_address = message.line_address
        line = self.array.lookup(line_address, touch=False)
        if line is not None:
            state = line.state
            if state == "S":
                self.record_transition("S", "Inv")
                self.array.evict(line_address)
                self.send("InvAck", self.directory_name, line_address,
                          sender=self.name)
                self._notify_lq(line_address, InvalidationReason.INVALIDATION)
                self._run_deferred_cpu(line_address)
            elif state == "IS_D":
                self.record_transition("IS_D", "Inv")
                line.state = "IS_D_I"
                self.send("InvAck", self.directory_name, line_address,
                          sender=self.name)
            elif state == "IS_D_I":
                self.record_transition("IS_D_I", "Inv")
                self.send("InvAck", self.directory_name, line_address,
                          sender=self.name)
            elif state == "SM_D":
                self.record_transition("SM_D", "Inv")
                line.words = {}
                line.state = "IM_D"
                self.send("InvAck", self.directory_name, line_address,
                          sender=self.name)
                if not self.faults.enabled(Fault.MESI_LQ_SM_INV):
                    # BUG SITE (MESI,LQ+SM,Inv): correct protocol forwards
                    # the invalidation to the LSQ in SM.
                    self._notify_lq(line_address, InvalidationReason.INVALIDATION)
            elif state == "IM_D":
                self.record_transition("IM_D", "Inv")
                self.send("InvAck", self.directory_name, line_address,
                          sender=self.name)
            else:
                self.invalid_transition(state, "Inv")
            return
        evicting = self._evicting.get(line_address)
        if evicting is not None:
            self.record_transition(evicting.state, "Inv")
            self.send("InvAck", self.directory_name, line_address, sender=self.name)
            evicting.state = "II_A"
            return
        # Stale invalidation that crossed our own eviction.
        self.record_transition("I", "Inv")
        self.send("InvAck", self.directory_name, line_address, sender=self.name)

    # -- forwards / recalls --------------------------------------------------

    def _on_forward(self, message: Message) -> None:
        kind = message.kind
        line_address = message.line_address
        line = self.array.lookup(line_address, touch=False)
        if line is not None:
            state = line.state
            if state in ("IM_D", "SM_D", "IS_D", "IS_D_I"):
                # The forward overtook our own data grant; defer it.
                self.record_transition(state, f"{kind}-deferred")
                self._mshrs[line_address].deferred_msgs.append(message)
                return
            if state == "S":
                # A stale forward from a transaction that raced with one of
                # our earlier writebacks.  Relinquish the line: the directory
                # reconciles its owner bookkeeping from our response.
                self.record_transition("S", kind)
                self.send("DataWB", self.directory_name, line_address,
                          words=dict(line.words), dirty=False, sender=self.name)
                self.array.evict(line_address)
                self._notify_lq(line_address, InvalidationReason.INVALIDATION)
                self._run_deferred_cpu(line_address)
                return
            if state == "M":
                self.record_transition("M", kind)
                self.send("DataWB", self.directory_name, line_address,
                          words=dict(line.words), dirty=True, sender=self.name)
                if kind == "FwdGetS":
                    line.state = "S"
                else:
                    self.array.evict(line_address)
                    if not self.faults.enabled(Fault.MESI_LQ_M_INV):
                        # BUG SITE (MESI,LQ+M,Inv).
                        self._notify_lq(line_address,
                                        InvalidationReason.INVALIDATION)
                    self._run_deferred_cpu(line_address)
                return
            if state == "E":
                self.record_transition("E", kind)
                self.send("DataWB", self.directory_name, line_address,
                          words=dict(line.words), dirty=False, sender=self.name)
                if kind == "FwdGetS":
                    line.state = "S"
                else:
                    self.array.evict(line_address)
                    if not self.faults.enabled(Fault.MESI_LQ_E_INV):
                        # BUG SITE (MESI,LQ+E,Inv).
                        self._notify_lq(line_address,
                                        InvalidationReason.INVALIDATION)
                    self._run_deferred_cpu(line_address)
                return
            self.invalid_transition(state, kind)
            return
        evicting = self._evicting.get(line_address)
        if evicting is not None:
            self.record_transition(evicting.state, kind)
            dirty = evicting.state == "MI_A"
            if evicting.state == "II_A":
                self.send("DataWB", self.directory_name, line_address,
                          words={}, dirty=False, not_present=True, sender=self.name)
            else:
                self.send("DataWB", self.directory_name, line_address,
                          words=dict(evicting.words), dirty=dirty, sender=self.name)
                evicting.state = "II_A"
            return
        # The forward raced with an eviction that has already completed (our
        # PutM/PutE satisfied the directory's transaction before this message
        # arrived).  Answer "not present"; the directory treats it as stale.
        self.record_transition("I", kind)
        self.send("DataWB", self.directory_name, line_address, words={},
                  dirty=False, not_present=True, sender=self.name)

    # -- writeback acks ------------------------------------------------------

    def _on_wback(self, message: Message) -> None:
        line_address = message.line_address
        evicting = self._evicting.pop(line_address, None)
        if evicting is None:
            self.invalid_transition("I", "WBAck", "no eviction outstanding")
            return
        self.record_transition(evicting.state, "WBAck")
        self._run_deferred_cpu(line_address)

    def _run_deferred_cpu(self, line_address: int) -> None:
        deferred = self._deferred_cpu.pop(line_address, None)
        if not deferred:
            return
        for action in deferred:
            self.kernel.schedule(1, action)
