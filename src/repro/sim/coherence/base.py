"""Shared infrastructure for coherence controllers."""

from __future__ import annotations

from enum import Enum
from typing import Callable

from repro.sim.coverage import CoverageCollector
from repro.sim.faults import FaultSet, ProtocolError
from repro.sim.interconnect import Interconnect, Message
from repro.sim.kernel import SimKernel


class InvalidationReason(Enum):
    """Why the L1 notified the load queue that a line went away."""

    INVALIDATION = "invalidation"          # external invalidation / recall
    REPLACEMENT = "replacement"            # local capacity/conflict eviction
    SELF_INVALIDATION = "self_invalidation"  # TSO-CC self-invalidation
    FLUSH = "flush"                        # explicit cache flush (clflush)
    FENCE = "fence"                        # RMW / fence induced invalidation


# Signature of the callback the L1 uses to tell the core's load queue that a
# cache line was invalidated/evicted: (line_address, reason).
InvalidationListener = Callable[[int, InvalidationReason], None]


class CoherenceController:
    """Base class: message plumbing, coverage recording, error reporting."""

    controller_kind = "controller"

    def __init__(self, name: str, kernel: SimKernel, network: Interconnect,
                 coverage: CoverageCollector, faults: FaultSet) -> None:
        self.name = name
        self.kernel = kernel
        self.network = network
        self.coverage = coverage
        self.faults = faults
        network.register(name, self.handle_message)

    # -- coverage / errors -------------------------------------------------

    def record_transition(self, state: str, event: str) -> None:
        self.coverage.record(self.controller_kind, state, event)

    def invalid_transition(self, state: str, event: str, detail: str = "") -> None:
        raise ProtocolError(self.controller_kind, state, event, detail)

    # -- messaging ---------------------------------------------------------

    def send(self, kind: str, dst: str, line_address: int,
             extra_latency: int = 0, **payload: object) -> None:
        message = Message(kind=kind, src=self.name, dst=dst,
                          line_address=line_address, payload=dict(payload))
        self.network.send(message, extra_latency=extra_latency)

    def handle_message(self, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    def quiescent(self) -> bool:  # pragma: no cover
        raise NotImplementedError
