"""MESI directory / shared L2 controller.

The directory is the ordering point of the protocol.  It is *blocking*: while
a line is in a transient state, newly arriving GetS/GetM requests for that
line are queued and serviced in order once the line returns to a stable
state.  Responses (acks, writebacks, recall data) are always processed
immediately, which is where the protocol races studied in the paper live:

* a ``PutM`` from the old owner racing with a ``FwdGetM`` the directory has
  already sent (the MESI+PUTX-Race bug is injected by *removing* the
  handling of this race, turning it into an invalid transition);
* an L2 replacement of a block owned by an L1 that was granted the line
  clean (E) but has silently dirtied it (the MESI+Replace-Race bug is
  injected by skipping the owner recall for such blocks, losing the
  modified data).

Directory states: ``NP`` (not present, only in memory), ``SS`` (L2 data
valid, zero or more sharers), ``EE`` (exclusive clean owner), ``MT``
(modified owner), plus transients ``NP_D_S``/``NP_D_M`` (memory fetch),
``SS_MB`` (collecting invalidation acks), ``MT_SB``/``MT_MB`` (owner
forward outstanding), ``MT_EV``/``SS_EV`` (L2 eviction in progress).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.cache import CacheArray, CacheLine
from repro.sim.coherence.base import CoherenceController
from repro.sim.config import SystemConfig
from repro.sim.coverage import CoverageCollector
from repro.sim.faults import Fault, FaultSet
from repro.sim.interconnect import Interconnect, Message
from repro.sim.kernel import SimKernel
from repro.sim.memory import MainMemory

_STABLE_STATES = ("SS", "EE", "MT")
_TRANSIENT_ARRAY_STATES = ("NP_D_S", "NP_D_M", "SS_MB", "MT_SB", "MT_MB")

_RETRY_DELAY = 8


@dataclass
class _Evicting:
    """An L2 line being evicted (recall or sharer invalidation outstanding)."""

    state: str                      # "MT_EV" or "SS_EV"
    words: dict[int, int] = field(default_factory=dict)
    owner: str | None = None
    pending_acks: int = 0


class MesiDirectory(CoherenceController):
    """Shared L2 cache combined with the MESI directory."""

    controller_kind = "L2"

    def __init__(self, kernel: SimKernel, network: Interconnect,
                 config: SystemConfig, memory: MainMemory,
                 coverage: CoverageCollector, faults: FaultSet,
                 name: str = "dir") -> None:
        super().__init__(name, kernel, network, coverage, faults)
        self.config = config
        self.memory = memory
        self.array = CacheArray(config.l2)
        self.stride = 16
        self._evicting: dict[int, _Evicting] = {}
        self._queued: dict[int, deque[Message]] = {}
        self._pending_fetches = 0
        self._pending_retries = 0

    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        busy_lines = any(line.state in _TRANSIENT_ARRAY_STATES
                         for line in self.array.all_lines())
        return (not busy_lines and not self._evicting
                and not any(self._queued.values())
                and self._pending_fetches == 0 and self._pending_retries == 0)

    def _is_busy(self, line_address: int) -> bool:
        if line_address in self._evicting:
            return True
        line = self.array.lookup(line_address, touch=False)
        return line is not None and line.state in _TRANSIENT_ARRAY_STATES

    def _l2_latency(self) -> int:
        return self.kernel.jitter(self.config.l2.hit_latency,
                                  self.config.l2_hit_latency_max)

    def _memory_latency(self) -> int:
        return self.kernel.jitter(self.config.memory_latency_min,
                                  self.config.memory_latency_max)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        kind = message.kind
        if kind in ("GetS", "GetM"):
            self._on_request(message)
        elif kind in ("PutM", "PutE", "PutS"):
            self._on_putback(message)
        elif kind == "InvAck":
            self._on_inv_ack(message)
        elif kind == "DataWB":
            self._on_data_wb(message)
        else:  # pragma: no cover
            self.invalid_transition("?", kind, f"unexpected message {message}")

    # ------------------------------------------------------------------
    # GetS / GetM
    # ------------------------------------------------------------------

    def _on_request(self, message: Message) -> None:
        line_address = message.line_address
        if self._is_busy(line_address):
            self._queued.setdefault(line_address, deque()).append(message)
            return
        requestor = str(message.payload["sender"])
        line = self.array.lookup(line_address, touch=False)
        if line is None:
            self._handle_request_np(message, requestor)
        elif message.kind == "GetS":
            self._handle_gets(line, requestor)
        else:
            self._handle_getm(line, requestor)
        # Requests handled without blocking leave the line stable; any
        # requests that queued up behind an earlier transaction must be
        # drained now, or they would wait forever.
        if not self._is_busy(line_address):
            self._unblock(line_address)

    def _handle_request_np(self, message: Message, requestor: str) -> None:
        line_address = message.line_address
        if not self._make_room(line_address):
            self._pending_retries += 1

            def retry() -> None:
                self._pending_retries -= 1
                self.handle_message(message)

            self.kernel.schedule(_RETRY_DELAY, retry)
            return
        state = "NP_D_S" if message.kind == "GetS" else "NP_D_M"
        self.record_transition("NP", message.kind)
        line = self.array.allocate(line_address, state)
        line.meta["requestor"] = requestor
        self._pending_fetches += 1

        def memory_arrived() -> None:
            self._pending_fetches -= 1
            words = self.memory.read_line(line_address,
                                          self.config.l2.line_bytes, self.stride)
            self._complete_memory_fetch(line, words)

        self.kernel.schedule(self._memory_latency(), memory_arrived)

    def _complete_memory_fetch(self, line: CacheLine, words: dict[int, int]) -> None:
        requestor = str(line.meta.pop("requestor"))
        line.words = dict(words)
        if line.state == "NP_D_S":
            self.record_transition("NP_D_S", "MemData")
            # No other sharers exist: grant Exclusive (clean).
            line.state = "EE"
            line.meta["owner"] = requestor
            line.meta["sharers"] = set()
            line.meta["clean_grant"] = True
            self.send("DataE", requestor, line.line_address,
                      words=dict(line.words))
        else:
            self.record_transition("NP_D_M", "MemData")
            line.state = "MT"
            line.meta["owner"] = requestor
            line.meta["sharers"] = set()
            line.meta["clean_grant"] = False
            self.send("DataM", requestor, line.line_address,
                      words=dict(line.words))
        self._unblock(line.line_address)

    def _handle_gets(self, line: CacheLine, requestor: str) -> None:
        state = line.state
        if state == "SS":
            self.record_transition("SS", "GetS")
            line.meta.setdefault("sharers", set()).add(requestor)
            self.send("Data", requestor, line.line_address,
                      extra_latency=self._l2_latency(), words=dict(line.words))
        elif state in ("EE", "MT"):
            self.record_transition(state, "GetS")
            owner = str(line.meta["owner"])
            line.state = "MT_SB"
            line.meta["requestor"] = requestor
            self.send("FwdGetS", owner, line.line_address)
        else:  # pragma: no cover
            self.invalid_transition(state, "GetS")

    def _handle_getm(self, line: CacheLine, requestor: str) -> None:
        state = line.state
        if state == "SS":
            self.record_transition("SS", "GetM")
            sharers = set(line.meta.get("sharers", set()))
            others = sharers - {requestor}
            if not others:
                line.state = "MT"
                line.meta["owner"] = requestor
                line.meta["sharers"] = set()
                line.meta["clean_grant"] = False
                self.send("DataM", requestor, line.line_address,
                          extra_latency=self._l2_latency(),
                          words=dict(line.words))
            else:
                line.state = "SS_MB"
                line.meta["requestor"] = requestor
                line.meta["pending_acks"] = len(others)
                for sharer in sorted(others):
                    self.send("Inv", sharer, line.line_address)
        elif state in ("EE", "MT"):
            self.record_transition(state, "GetM")
            owner = str(line.meta["owner"])
            line.state = "MT_MB"
            line.meta["requestor"] = requestor
            self.send("FwdGetM", owner, line.line_address)
        else:  # pragma: no cover
            self.invalid_transition(state, "GetM")

    # ------------------------------------------------------------------
    # Writebacks (PutM / PutE / PutS)
    # ------------------------------------------------------------------

    def _on_putback(self, message: Message) -> None:
        line_address = message.line_address
        sender = str(message.payload["sender"])
        kind = message.kind
        evicting = self._evicting.get(line_address)
        if evicting is not None:
            self._putback_during_l2_eviction(evicting, message, sender)
            return
        line = self.array.lookup(line_address, touch=False)
        if line is None:
            # Stale writeback for a line the directory no longer tracks
            # (e.g. after the Replace-Race bug dropped it): acknowledge but
            # do not write any data back - the update is lost.
            self.record_transition("NP", f"{kind}-stale")
            self.send("WBAck", sender, line_address)
            return
        state = line.state
        owner = line.meta.get("owner")
        if kind in ("PutM", "PutE") and state in ("EE", "MT") and owner == sender:
            self.record_transition(state, kind)
            if kind == "PutM":
                words = dict(message.payload.get("words", {}))
                line.words.update(words)
                self.memory.write_line(line.words)
            line.state = "SS"
            line.meta["owner"] = None
            line.meta["sharers"] = set()
            line.meta["clean_grant"] = False
            self.send("WBAck", sender, line_address)
            self._unblock(line_address)
            return
        if kind == "PutS" and state == "SS":
            self.record_transition("SS", "PutS")
            line.meta.setdefault("sharers", set()).discard(sender)
            self.send("WBAck", sender, line_address)
            return
        if state == "MT_MB" and kind in ("PutM", "PutE") and owner == sender:
            # The old owner's eviction writeback crossed our FwdGetM.
            if self.faults.enabled(Fault.MESI_PUTX_RACE):
                # BUG SITE (MESI+PUTX-Race): the unpatched protocol has no
                # transition for this race and dies on an invalid transition.
                self.invalid_transition(state, kind,
                                        "writeback raced with forward")
            self.record_transition(state, f"{kind}-race")
            if kind == "PutM":
                words = dict(message.payload.get("words", {}))
                line.words.update(words)
                self.memory.write_line(line.words)
            self.send("WBAck", sender, line_address)
            self._finish_owner_transfer(line)
            return
        if state == "MT_SB" and kind in ("PutM", "PutE") and owner == sender:
            self.record_transition(state, f"{kind}-race")
            if kind == "PutM":
                words = dict(message.payload.get("words", {}))
                line.words.update(words)
                self.memory.write_line(line.words)
            self.send("WBAck", sender, line_address)
            requestor = str(line.meta.pop("requestor"))
            line.state = "SS"
            line.meta["owner"] = None
            line.meta["sharers"] = {requestor}
            self.send("Data", requestor, line_address, words=dict(line.words))
            self._unblock(line_address)
            return
        if state == "SS_MB" and kind == "PutS":
            # A sharer's eviction crossed the invalidation we sent it; it
            # will still answer the Inv with an InvAck from its SI_A state.
            self.record_transition("SS_MB", "PutS-race")
            self.send("WBAck", sender, line_address)
            return
        # Anything else is a stale writeback from a non-owner/non-sharer.
        self.record_transition(state, f"{kind}-stale")
        self.send("WBAck", sender, line_address)

    def _putback_during_l2_eviction(self, evicting: _Evicting, message: Message,
                                    sender: str) -> None:
        line_address = message.line_address
        kind = message.kind
        if evicting.state == "MT_EV" and sender == evicting.owner:
            self.record_transition("MT_EV", kind)
            if kind == "PutM":
                words = dict(message.payload.get("words", {}))
                evicting.words.update(words)
            self.memory.write_line(evicting.words)
            self.send("WBAck", sender, line_address)
            del self._evicting[line_address]
            self._unblock(line_address)
            return
        self.record_transition(evicting.state, f"{kind}-stale")
        self.send("WBAck", sender, line_address)

    # ------------------------------------------------------------------
    # Invalidation acks
    # ------------------------------------------------------------------

    def _on_inv_ack(self, message: Message) -> None:
        line_address = message.line_address
        evicting = self._evicting.get(line_address)
        if evicting is not None and evicting.state == "SS_EV":
            self.record_transition("SS_EV", "InvAck")
            evicting.pending_acks -= 1
            if evicting.pending_acks <= 0:
                del self._evicting[line_address]
                self._unblock(line_address)
            return
        line = self.array.lookup(line_address, touch=False)
        if line is None or line.state != "SS_MB":
            # Ack from a stale invalidation; nothing to do.
            self.record_transition("NP" if line is None else line.state,
                                   "InvAck-stale")
            return
        self.record_transition("SS_MB", "InvAck")
        line.meta["pending_acks"] = int(line.meta["pending_acks"]) - 1
        if line.meta["pending_acks"] <= 0:
            requestor = str(line.meta.pop("requestor"))
            line.state = "MT"
            line.meta["owner"] = requestor
            line.meta["sharers"] = set()
            line.meta["clean_grant"] = False
            self.send("DataM", requestor, line_address, words=dict(line.words))
            self._unblock(line_address)

    # ------------------------------------------------------------------
    # Owner data responses (to FwdGetS / FwdGetM / Recall)
    # ------------------------------------------------------------------

    def _on_data_wb(self, message: Message) -> None:
        line_address = message.line_address
        sender = str(message.payload["sender"])
        dirty = bool(message.payload.get("dirty", False))
        not_present = bool(message.payload.get("not_present", False))
        words = dict(message.payload.get("words", {}))
        evicting = self._evicting.get(line_address)
        if evicting is not None and evicting.state == "MT_EV":
            if sender != evicting.owner:
                # A writeback belonging to an older, already completed
                # transaction; the recall response we are waiting for comes
                # from the current owner only.
                self.record_transition("MT_EV", "DataWB-stale")
                return
            self.record_transition("MT_EV", "DataWB")
            if dirty and not not_present:
                evicting.words.update(words)
            self.memory.write_line(evicting.words)
            del self._evicting[line_address]
            self._unblock(line_address)
            return
        line = self.array.lookup(line_address, touch=False)
        if line is None:
            self.record_transition("NP", "DataWB-stale")
            return
        state = line.state
        if state in ("EE", "MT") and sender == line.meta.get("owner"):
            # The owner answered a stale forward/recall (from a transaction
            # that was already completed by a crossing writeback) and has
            # relinquished the line; fold the data in and drop ownership so
            # the directory's view matches the caches again.
            self.record_transition(state, "DataWB-relinquish")
            if dirty and not not_present:
                line.words.update(words)
                self.memory.write_line(line.words)
            line.state = "SS"
            line.meta["owner"] = None
            line.meta["sharers"] = set()
            line.meta["clean_grant"] = False
            self._unblock(line_address)
            return
        if state in ("MT_SB", "MT_MB") and sender != line.meta.get("owner"):
            # Response from a previous owner whose transaction already
            # completed; ignore it and keep waiting for the current owner.
            self.record_transition(state, "DataWB-stale")
            return
        if state == "MT_SB":
            self.record_transition("MT_SB", "DataWB")
            if dirty and not not_present:
                line.words.update(words)
                self.memory.write_line(line.words)
            requestor = str(line.meta.pop("requestor"))
            old_owner = line.meta.get("owner")
            line.state = "SS"
            sharers = {requestor}
            if old_owner is not None and sender == old_owner and not not_present:
                sharers.add(str(old_owner))
            line.meta["owner"] = None
            line.meta["sharers"] = sharers
            line.meta["clean_grant"] = False
            self.send("Data", requestor, line_address,
                      extra_latency=self._l2_latency(), words=dict(line.words))
            self._unblock(line_address)
        elif state == "MT_MB":
            self.record_transition("MT_MB", "DataWB")
            if dirty and not not_present:
                line.words.update(words)
                self.memory.write_line(line.words)
            self._finish_owner_transfer(line)
        else:
            # A stale DataWB that lost a race with a PutM we already used.
            self.record_transition(state, "DataWB-stale")

    def _finish_owner_transfer(self, line: CacheLine) -> None:
        """Complete an MT_MB transaction: grant M to the queued requestor."""
        requestor = str(line.meta.pop("requestor"))
        line.state = "MT"
        line.meta["owner"] = requestor
        line.meta["sharers"] = set()
        line.meta["clean_grant"] = False
        self.send("DataM", requestor, line.line_address, words=dict(line.words))
        self._unblock(line.line_address)

    # ------------------------------------------------------------------
    # L2 capacity evictions
    # ------------------------------------------------------------------

    def _make_room(self, line_address: int) -> bool:
        if not self.array.needs_victim(line_address):
            return True
        victim = self.array.select_victim(
            line_address, exclude_states=_TRANSIENT_ARRAY_STATES)
        if victim is None:
            return False
        self._evict_l2_line(victim)
        return not self.array.needs_victim(line_address)

    def _evict_l2_line(self, victim: CacheLine) -> None:
        line_address = victim.line_address
        state = victim.state
        self.array.evict(line_address)
        if state == "SS":
            sharers = set(victim.meta.get("sharers", set()))
            self.record_transition("SS", "Replacement")
            self.memory.write_line(victim.words)
            if not sharers:
                return
            self._evicting[line_address] = _Evicting(
                "SS_EV", dict(victim.words), pending_acks=len(sharers))
            for sharer in sorted(sharers):
                self.send("Inv", sharer, line_address)
            return
        if state in ("EE", "MT"):
            owner = str(victim.meta["owner"])
            clean_grant = bool(victim.meta.get("clean_grant", False))
            if (state == "EE" and clean_grant
                    and self.faults.enabled(Fault.MESI_REPLACE_RACE)):
                # BUG SITE (MESI+Replace-Race): the L2 believes the block is
                # clean and drops it without recalling the owner.  If the
                # owner silently upgraded E->M, its modified data is no
                # longer tracked and will be lost on writeback.
                self.record_transition("EE", "Replacement-dropped")
                return
            self.record_transition(state, "Replacement")
            self._evicting[line_address] = _Evicting(
                "MT_EV", dict(victim.words), owner=owner)
            self.send("Recall", owner, line_address)
            return
        # pragma: no cover - transient states are excluded from victim search
        self.invalid_transition(state, "Replacement")

    # ------------------------------------------------------------------
    # Queued request processing
    # ------------------------------------------------------------------

    def _unblock(self, line_address: int) -> None:
        queue = self._queued.get(line_address)
        if not queue:
            return
        message = queue.popleft()
        if not queue:
            del self._queued[line_address]
        self.kernel.schedule(1, lambda: self.handle_message(message))
