"""Simplified TSO-CC protocol (consistency-directed lazy coherence).

TSO-CC (Elver & Nagarajan, HPCA 2014) deliberately violates the
Single-Writer-Multiple-Reader invariant: writers do not eagerly invalidate
sharers.  Instead, writes are serialised at the shared L2, each write is
tagged with a per-writer *timestamp group*, and readers *self-invalidate*
their shared lines when they observe a line whose timestamp is larger than
or equal to the last timestamp they have seen from that writer.  Timestamps
are bounded; when a writer's timestamp wraps, its *epoch-id* is incremented
so that readers can distinguish pre- and post-reset timestamps.

The two studied TSO-CC bugs are injected here:

* ``TSO-CC+no-epoch-ids`` - readers ignore epoch-ids, so after a timestamp
  reset their stale ``last_seen`` value suppresses self-invalidation.
* ``TSO-CC+compare`` - the self-invalidation condition uses ``>`` instead of
  ``>=``, so a second observation from the same timestamp group fails to
  invalidate.

Both manifest as read->read reordering (stale shared lines are read after a
newer value from the same writer has been observed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.cache import CacheArray
from repro.sim.coherence.base import (CoherenceController, InvalidationListener,
                                      InvalidationReason)
from repro.sim.config import SystemConfig
from repro.sim.coverage import CoverageCollector
from repro.sim.faults import Fault, FaultSet
from repro.sim.interconnect import Interconnect, Message
from repro.sim.kernel import SimKernel
from repro.sim.memory import MainMemory


@dataclass
class _ReadMshr:
    pending_loads: list[tuple[int, Callable[[int], None]]] = field(default_factory=list)


class TsoCcL1Cache(CoherenceController):
    """Private L1 cache for the TSO-CC protocol."""

    controller_kind = "L1_TSOCC"

    def __init__(self, core_id: int, kernel: SimKernel, network: Interconnect,
                 config: SystemConfig, coverage: CoverageCollector,
                 faults: FaultSet, directory_name: str = "dir") -> None:
        super().__init__(f"l1_{core_id}", kernel, network, coverage, faults)
        self.core_id = core_id
        self.config = config
        self.directory_name = directory_name
        self.array = CacheArray(config.l1)
        self._mshrs: dict[int, _ReadMshr] = {}
        self._write_acks: dict[int, list[tuple[int, Callable[[Message], None]]]] = {}
        self._outstanding_writes = 0
        self.last_seen: dict[str, int] = {}
        self.last_epoch: dict[str, int] = {}
        self.invalidation_listener: InvalidationListener | None = None

    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        return not self._mshrs and self._outstanding_writes == 0

    def _notify_lq(self, line_address: int, reason: InvalidationReason) -> None:
        if self.invalidation_listener is not None:
            self.invalidation_listener(line_address, reason)

    # ------------------------------------------------------------------
    # CPU-side interface
    # ------------------------------------------------------------------

    def load(self, address: int, callback: Callable[[int], None]) -> None:
        line_address = self.array.line_address(address)
        line = self.array.lookup(address)
        if line is not None and line.state == "V":
            accesses = int(line.meta.get("accesses", 0))
            if accesses > 0:
                self.record_transition("V", "LoadHit")
                line.meta["accesses"] = accesses - 1
                value = line.read_word(address)
                self.kernel.schedule(self.config.l1.hit_latency,
                                     lambda: callback(value))
                return
            # Access budget exhausted: revalidate with the L2.
            self.record_transition("V", "LoadExpired")
            self.array.evict(line_address)
            self._notify_lq(line_address, InvalidationReason.REPLACEMENT)
            self._start_read_miss(address, callback)
            return
        if line is not None and line.state == "I_D":
            self.record_transition("I_D", "Load")
            self._mshrs[line_address].pending_loads.append((address, callback))
            return
        self.record_transition("I", "LoadMiss")
        self._start_read_miss(address, callback)

    def _start_read_miss(self, address: int, callback: Callable[[int], None]) -> None:
        line_address = self.array.line_address(address)
        if line_address in self._mshrs:
            self._mshrs[line_address].pending_loads.append((address, callback))
            return
        if self.array.needs_victim(line_address):
            victim = self.array.select_victim(line_address, exclude_states=("I_D",))
            if victim is not None:
                self.record_transition("V", "Replacement")
                self.array.evict(victim.line_address)
                self._notify_lq(victim.line_address, InvalidationReason.REPLACEMENT)
        if not self.array.needs_victim(line_address):
            self.array.allocate(line_address, "I_D")
        mshr = _ReadMshr()
        mshr.pending_loads.append((address, callback))
        self._mshrs[line_address] = mshr
        self.send("ReadReq", self.directory_name, line_address, sender=self.name)

    def store(self, address: int, value: int,
              callback: Callable[[int], None]) -> None:
        self.record_transition("V" if self.array.contains(address) else "I",
                               "StoreThrough")
        self._outstanding_writes += 1

        def on_ack(message: Message) -> None:
            self._outstanding_writes -= 1
            overwritten = int(message.payload["overwritten"])
            self._apply_own_write(address, value, message)
            callback(overwritten)

        self.send("WriteReq", self.directory_name,
                  self.array.line_address(address), sender=self.name,
                  address=address, value=value)
        self._write_acks.setdefault(self.array.line_address(address), []).append(
            (address, on_ack))

    def rmw(self, address: int, value: int,
            callback: Callable[[int, int], None]) -> None:
        self.record_transition("V" if self.array.contains(address) else "I", "RMW")
        self._outstanding_writes += 1

        def on_ack(message: Message) -> None:
            self._outstanding_writes -= 1
            read_value = int(message.payload["read_value"])
            overwritten = int(message.payload["overwritten"])
            # An RMW acts as a fence: conservatively drop every cached line
            # so later loads observe up-to-date data.
            self._self_invalidate(exclude=None, reason=InvalidationReason.FENCE)
            self._apply_own_write(address, value, message)
            callback(read_value, overwritten)

        self.send("RMWReq", self.directory_name,
                  self.array.line_address(address), sender=self.name,
                  address=address, value=value)
        self._write_acks.setdefault(self.array.line_address(address), []).append(
            (address, on_ack))

    def flush(self, address: int, callback: Callable[[], None]) -> None:
        line_address = self.array.line_address(address)
        line = self.array.lookup(address, touch=False)
        self.record_transition(line.state if line is not None else "I", "Flush")
        if line is not None and line.state == "V":
            self.array.evict(line_address)
            self._notify_lq(line_address, InvalidationReason.FLUSH)
        callback()

    # ------------------------------------------------------------------
    # Network-side events
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "ReadResp":
            self._on_read_resp(message)
        elif kind in ("WriteAck", "RMWAck"):
            self._on_write_ack(message)
        else:  # pragma: no cover
            self.invalid_transition("?", kind, f"unexpected message {message}")

    def _on_read_resp(self, message: Message) -> None:
        line_address = message.line_address
        mshr = self._mshrs.pop(line_address, None)
        if mshr is None:
            self.invalid_transition("I", "ReadResp", "response without request")
            return
        words = dict(message.payload.get("words", {}))
        writer = message.payload.get("writer")
        ts = int(message.payload.get("ts", 0))
        epoch = int(message.payload.get("epoch", 0))
        self.record_transition("I_D", "ReadResp")
        self._apply_consistency_rule(line_address, str(writer) if writer else None,
                                     ts, epoch)
        line = self.array.lookup(line_address, touch=False)
        if line is None:
            if self.array.needs_victim(line_address):
                victim = self.array.select_victim(line_address,
                                                  exclude_states=("I_D",))
                if victim is not None:
                    self.record_transition("V", "Replacement")
                    self.array.evict(victim.line_address)
                    self._notify_lq(victim.line_address,
                                    InvalidationReason.REPLACEMENT)
            if not self.array.needs_victim(line_address):
                line = self.array.allocate(line_address, "V")
        if line is not None:
            line.state = "V"
            line.words = words
            line.meta["accesses"] = self.config.tso_cc_max_accesses
            line.meta["writer"] = writer
        for address, callback in mshr.pending_loads:
            value = words.get(address, 0)
            self.kernel.schedule(self.config.l1.hit_latency,
                                 lambda cb=callback, v=value: cb(v))

    def _apply_consistency_rule(self, filled_line: int, writer: str | None,
                                ts: int, epoch: int) -> None:
        """The TSO-CC self-invalidation rule (with the two bug sites)."""
        if writer is None or writer == self.name:
            return
        if not self.faults.enabled(Fault.TSOCC_NO_EPOCH_IDS):
            known_epoch = self.last_epoch.get(writer, 0)
            if epoch > known_epoch:
                # BUG SITE (TSO-CC+no-epoch-ids): without epoch-ids this
                # reset never happens and stale last_seen values suppress
                # self-invalidation after a timestamp reset.
                self.last_epoch[writer] = epoch
                self.last_seen[writer] = 0
            elif epoch < known_epoch:
                # Old-epoch line: stale information, no invalidation needed.
                return
        seen = self.last_seen.get(writer, 0)
        # BUG SITE (TSO-CC+compare): the faulty strictly-larger
        # comparison misses repeated observations from the same
        # timestamp group.
        should_invalidate = (ts > seen
                             if self.faults.enabled(Fault.TSOCC_COMPARE)
                             else ts >= seen)
        if should_invalidate:
            self.record_transition("V", "SelfInvalidate")
            self._self_invalidate(exclude=filled_line,
                                  reason=InvalidationReason.SELF_INVALIDATION)
            self.last_seen[writer] = ts

    def _self_invalidate(self, exclude: int | None,
                         reason: InvalidationReason) -> None:
        dropped = [line for line in self.array.all_lines()
                   if line.state == "V" and line.line_address != exclude]
        for line in dropped:
            self.array.evict(line.line_address)
        if dropped or reason is InvalidationReason.FENCE:
            self._notify_lq(dropped[0].line_address if dropped else 0, reason)

    def _apply_own_write(self, address: int, value: int, message: Message) -> None:
        line = self.array.lookup(address, touch=False)
        if line is not None and line.state == "V":
            line.write_word(address, value)
            line.meta["writer"] = self.name

    def _on_write_ack(self, message: Message) -> None:
        line_address = message.line_address
        address = int(message.payload["address"])
        waiters = self._write_acks.get(line_address, [])
        for index, (waiting_address, handler) in enumerate(waiters):
            if waiting_address == address:
                waiters.pop(index)
                if not waiters:
                    self._write_acks.pop(line_address, None)
                handler(message)
                return
        self.invalid_transition("I", message.kind, "ack without request")


class TsoCcDirectory(CoherenceController):
    """Shared L2 / serialisation point of the TSO-CC protocol.

    All writes are serialised here; the directory assigns per-writer
    timestamp groups and epoch-ids and answers read requests with the line
    data plus the metadata the reader needs to apply the self-invalidation
    rule.  Data is backed directly by main memory (the L2 data array is not
    capacity-modelled; the TSO-CC bugs do not depend on L2 evictions).
    """

    controller_kind = "L2_TSOCC"

    def __init__(self, kernel: SimKernel, network: Interconnect,
                 config: SystemConfig, memory: MainMemory,
                 coverage: CoverageCollector, faults: FaultSet,
                 name: str = "dir") -> None:
        super().__init__(name, kernel, network, coverage, faults)
        self.config = config
        self.memory = memory
        self.stride = 16
        self.line_meta: dict[int, dict[str, object]] = {}
        self.write_counts: dict[str, int] = {}
        self.timestamps: dict[str, int] = {}
        self.epochs: dict[str, int] = {}
        self._pending = 0

    def quiescent(self) -> bool:
        return self._pending == 0

    def _latency(self) -> int:
        return self.kernel.jitter(self.config.l2.hit_latency,
                                  self.config.l2_hit_latency_max)

    def handle_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "ReadReq":
            self._on_read(message)
        elif kind == "WriteReq":
            self._on_write(message)
        elif kind == "RMWReq":
            self._on_rmw(message)
        else:  # pragma: no cover
            self.invalid_transition("?", kind, f"unexpected message {message}")

    def _on_read(self, message: Message) -> None:
        line_address = message.line_address
        sender = str(message.payload["sender"])
        tracked = line_address in self.line_meta
        self.record_transition("TRACKED" if tracked else "NP", "ReadReq")
        self._pending += 1

        def respond() -> None:
            self._pending -= 1
            words = self.memory.read_line(line_address,
                                          self.config.l2.line_bytes, self.stride)
            meta = self.line_meta.get(line_address, {})
            self.send("ReadResp", sender, line_address, words=words,
                      writer=meta.get("writer"), ts=meta.get("ts", 0),
                      epoch=meta.get("epoch", 0))

        self.kernel.schedule(self._latency(), respond)

    def _assign_timestamp(self, writer: str) -> tuple[int, int]:
        """Return (timestamp, epoch) for the next write of *writer*."""
        ts = self.timestamps.setdefault(writer, 1)
        epoch = self.epochs.setdefault(writer, 1)
        count = self.write_counts.get(writer, 0) + 1
        self.write_counts[writer] = count
        if count % self.config.tso_cc_timestamp_group == 0:
            self.record_transition("WRITER", "TimestampGroupAdvance")
            self.timestamps[writer] = ts + 1
            if self.timestamps[writer] > self.config.tso_cc_max_timestamp:
                self.record_transition("WRITER", "EpochReset")
                self.timestamps[writer] = 1
                self.epochs[writer] = epoch + 1
        return ts, epoch

    def _on_write(self, message: Message) -> None:
        line_address = message.line_address
        sender = str(message.payload["sender"])
        address = int(message.payload["address"])
        value = int(message.payload["value"])
        self.record_transition(
            "TRACKED" if line_address in self.line_meta else "NP", "WriteThrough")
        overwritten = self.memory.write(address, value)
        ts, epoch = self._assign_timestamp(sender)
        self.line_meta[line_address] = {"writer": sender, "ts": ts, "epoch": epoch}
        self._pending += 1

        def respond() -> None:
            self._pending -= 1
            self.send("WriteAck", sender, line_address, address=address,
                      overwritten=overwritten, ts=ts, epoch=epoch)

        self.kernel.schedule(self._latency(), respond)

    def _on_rmw(self, message: Message) -> None:
        line_address = message.line_address
        sender = str(message.payload["sender"])
        address = int(message.payload["address"])
        value = int(message.payload["value"])
        self.record_transition(
            "TRACKED" if line_address in self.line_meta else "NP", "RMW")
        read_value = self.memory.read(address)
        overwritten = self.memory.write(address, value)
        ts, epoch = self._assign_timestamp(sender)
        self.line_meta[line_address] = {"writer": sender, "ts": ts, "epoch": epoch}
        self._pending += 1

        def respond() -> None:
            self._pending -= 1
            self.send("RMWAck", sender, line_address, address=address,
                      read_value=read_value, overwritten=overwritten,
                      ts=ts, epoch=epoch)

        self.kernel.schedule(self._latency(), respond)
