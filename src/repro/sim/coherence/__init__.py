"""Cache coherence protocols.

Two protocols are provided, mirroring the paper's case studies:

* :mod:`repro.sim.coherence.mesi_l1` / :mod:`repro.sim.coherence.mesi_l2` -
  a blocking-directory MESI protocol with the transient states involved in
  the studied bugs (IS, SM, owner recalls, replacements, PutM races).
* :mod:`repro.sim.coherence.tso_cc` - a simplified TSO-CC protocol
  (consistency-directed lazy coherence): write-through serialisation at the
  shared L2, per-writer timestamp groups, reader-side last-seen tables,
  self-invalidation and epoch-ids.

Both record every (state, event) transition into a
:class:`repro.sim.coverage.CoverageCollector` - the structural coverage the
GP fitness function consumes.
"""

from repro.sim.coherence.base import CoherenceController, InvalidationReason
from repro.sim.coherence.mesi_l1 import MesiL1Cache
from repro.sim.coherence.mesi_l2 import MesiDirectory
from repro.sim.coherence.tso_cc import TsoCcL1Cache, TsoCcDirectory

__all__ = [
    "CoherenceController",
    "InvalidationReason",
    "MesiL1Cache",
    "MesiDirectory",
    "TsoCcL1Cache",
    "TsoCcDirectory",
]
