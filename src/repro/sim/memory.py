"""Main-memory model.

Memory is value-accurate at word (stride) granularity: each address maps to
the value of the last write that reached memory.  Values are the globally
unique write identifiers assigned by the test engine, so reading memory
tells the observer exactly which write produced the value (paper §4.1:
"each write event is assigned a unique ID - the value to be written").
Unwritten locations read as zero, the initial value.
"""

from __future__ import annotations


class MainMemory:
    """Flat, sparse main memory holding word-granular values."""

    INITIAL_VALUE = 0

    def __init__(self, latency_min: int, latency_max: int) -> None:
        if latency_min > latency_max or latency_min < 0:
            raise ValueError("invalid memory latency range")
        self.latency_min = latency_min
        self.latency_max = latency_max
        self._words: dict[int, int] = {}

    def read(self, address: int) -> int:
        return self._words.get(address, self.INITIAL_VALUE)

    def write(self, address: int, value: int) -> int:
        """Write a word; returns the value that was overwritten."""
        previous = self._words.get(address, self.INITIAL_VALUE)
        self._words[address] = value
        return previous

    def read_line(self, line_address: int, line_bytes: int, stride: int) -> dict[int, int]:
        """Return the word values of one cache line as {address: value}."""
        return {
            line_address + offset: self.read(line_address + offset)
            for offset in range(0, line_bytes, stride)
        }

    def write_line(self, words: dict[int, int]) -> None:
        for address, value in words.items():
            self._words[address] = value

    def clear_range(self, addresses: list[int]) -> None:
        """Reset the given addresses to the initial value (reset_test_mem)."""
        for address in addresses:
            self._words.pop(address, None)

    def clear(self) -> None:
        self._words.clear()

    def snapshot(self) -> dict[int, int]:
        return dict(self._words)
