"""Structural coverage of coherence-protocol transitions (paper §3.2).

Coverage is recorded as ``(controller_kind, state, event)`` triples.  As in
the paper, identical controllers (e.g. the per-core L1s) are not
distinguished: their transitions are summed under one controller kind.  The
collector keeps both global counts (since simulation start) and the set of
transitions covered by the current test-run, which is what the adaptive
fitness function consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True, order=True)
class TransitionKey:
    """One protocol transition: controller kind x state x triggering event."""

    controller: str
    state: str
    event: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.controller}:{self.state}--{self.event}"


@dataclass(frozen=True)
class CoverageState:
    """Picklable snapshot of a collector's cumulative observations.

    Per-run state (:meth:`CoverageCollector.run_transitions`) is
    deliberately excluded: checkpoints are only taken between test-runs,
    when the run set is about to be reset anyway.
    """

    counts: tuple[tuple[TransitionKey, int], ...] = ()
    known: frozenset[TransitionKey] = field(default_factory=frozenset)


class CoverageCollector:
    """Accumulates protocol-transition coverage.

    ``record`` is called by the coherence controllers on every transition.
    The engine calls :meth:`begin_run` before a test-run and reads
    :meth:`run_transitions` afterwards.
    """

    def __init__(self) -> None:
        self.global_counts: Counter[TransitionKey] = Counter()
        self._run_transitions: set[TransitionKey] = set()
        self._known: set[TransitionKey] = set()

    def declare(self, transitions: Iterable[TransitionKey]) -> None:
        """Declare transitions that exist in the protocol specification.

        Declaring the full transition space lets total coverage be reported
        as a fraction (Table 6) even for transitions never exercised.
        """
        self._known.update(transitions)

    def record(self, controller: str, state: str, event: str) -> TransitionKey:
        key = TransitionKey(controller, state, event)
        self.global_counts[key] += 1
        self._run_transitions.add(key)
        self._known.add(key)
        return key

    def begin_run(self) -> None:
        """Reset the per-test-run transition set (global counts persist)."""
        self._run_transitions = set()

    def run_transitions(self) -> frozenset[TransitionKey]:
        return frozenset(self._run_transitions)

    @property
    def known_transitions(self) -> frozenset[TransitionKey]:
        return frozenset(self._known)

    @property
    def covered_transitions(self) -> frozenset[TransitionKey]:
        return frozenset(self.global_counts)

    def total_coverage(self) -> float:
        """Fraction of known transitions covered at least once (Table 6)."""
        if not self._known:
            return 0.0
        return len(self.global_counts) / len(self._known)

    def rare_transitions(self, cutoff: int) -> frozenset[TransitionKey]:
        """Transitions whose global count is below ``cutoff`` (plus unseen).

        This is the transition set the adaptive fitness function focuses on
        (paper §3.2: frequent transitions are excluded from coverage).
        """
        rare = {key for key in self._known if self.global_counts[key] < cutoff}
        return frozenset(rare)

    def merge(self, other: "CoverageCollector") -> None:
        """Fold another collector's observations into this one."""
        self.global_counts.update(other.global_counts)
        self._known.update(other._known)

    # -- checkpoint/resume (chunked campaign scheduling) -------------------

    def checkpoint(self) -> CoverageState:
        """Snapshot the cumulative counts and known set between test-runs."""
        return CoverageState(counts=tuple(self.global_counts.items()),
                             known=frozenset(self._known))

    def restore(self, state: CoverageState) -> None:
        """Replace this collector's cumulative state with a snapshot."""
        self.global_counts = Counter(dict(state.counts))
        self._known = set(state.known)
        self._run_transitions = set()
