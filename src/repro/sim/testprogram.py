"""Executable test representation consumed by the simulator.

The GP layer (:mod:`repro.core`) manipulates richer chromosome objects; what
the simulated cores execute is this minimal, ISA-neutral form: per-thread
lists of :class:`TestOp`, mirroring the paper's operation classes (Table 3):
Read, ReadAddrDp, Write, ReadModifyWrite, CacheFlush and Delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class OpKind(Enum):
    """Operation classes of paper Table 3."""

    READ = "read"
    READ_ADDR_DP = "read_addr_dp"
    WRITE = "write"
    RMW = "rmw"
    CACHE_FLUSH = "cache_flush"
    DELAY = "delay"

    @property
    def is_memory(self) -> bool:
        return self in (OpKind.READ, OpKind.READ_ADDR_DP, OpKind.WRITE,
                        OpKind.RMW, OpKind.CACHE_FLUSH)

    @property
    def is_load(self) -> bool:
        return self in (OpKind.READ, OpKind.READ_ADDR_DP)

    @property
    def writes_memory(self) -> bool:
        return self in (OpKind.WRITE, OpKind.RMW)


@dataclass(frozen=True)
class TestOp:
    """One executable operation of a test thread."""

    op_id: int                 # global slot index; doubles as the event id
    kind: OpKind
    address: int | None = None
    value: int = 0             # unique write id for WRITE / RMW
    delay: int = 0             # cycles for DELAY

    def __post_init__(self) -> None:
        if self.kind.is_memory and self.address is None:
            raise ValueError(f"{self.kind} requires an address")
        if self.kind.writes_memory and self.value <= 0:
            raise ValueError(f"{self.kind} requires a positive unique value")
        if self.kind is OpKind.DELAY and self.delay < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class TestThread:
    """The program-ordered operation sequence of one simulated thread."""

    pid: int
    ops: tuple[TestOp, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def memory_ops(self) -> tuple[TestOp, ...]:
        return tuple(op for op in self.ops if op.kind.is_memory)


def threads_from_slots(slots: list[tuple[int, TestOp]],
                       num_threads: int) -> list[TestThread]:
    """Split a flat ``(pid, op)`` slot list into per-thread programs.

    This mirrors the paper's flat-list chromosome representation (§3.3): the
    order of slots gives the code sequence; per-thread program order is the
    subsequence belonging to each pid.
    """
    per_thread: dict[int, list[TestOp]] = {pid: [] for pid in range(num_threads)}
    for pid, op in slots:
        if pid not in per_thread:
            raise ValueError(f"pid {pid} out of range [0, {num_threads})")
        per_thread[pid].append(op)
    return [TestThread(pid=pid, ops=tuple(ops))
            for pid, ops in sorted(per_thread.items())]
