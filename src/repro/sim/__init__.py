"""Multicore memory-system simulator substrate.

This package is the substitute for the paper's gem5+Ruby full-system
environment.  It provides an event-driven, functionally accurate multicore
memory system: out-of-order cores with load/store queues, private L1 caches
kept coherent by either a directory-based MESI protocol or a simplified
TSO-CC protocol, a shared L2/directory, a latency-randomised interconnect
and a main memory.  Stale data affects loaded values, conflict orders
(rf/co) are observed during execution, and protocol transitions are recorded
as structural coverage.
"""

from repro.sim.config import CacheConfig, SystemConfig, TestMemoryLayout
from repro.sim.coverage import CoverageCollector, TransitionKey
from repro.sim.faults import Fault, FaultSet, ProtocolError, ALL_FAULTS
from repro.sim.system import System, IterationResult
from repro.sim.testprogram import OpKind, TestOp, TestThread

__all__ = [
    "CacheConfig",
    "SystemConfig",
    "TestMemoryLayout",
    "CoverageCollector",
    "TransitionKey",
    "Fault",
    "FaultSet",
    "ProtocolError",
    "ALL_FAULTS",
    "System",
    "IterationResult",
    "OpKind",
    "TestOp",
    "TestThread",
]
