"""Guest-host interface (paper §4, Table 1 and Algorithm 2).

In the paper the guest workload runs inside the simulated full system and
calls host-assisted services to minimise per-test overhead: precise barriers
to start all threads in lock-step, host-side code emission, memory reset and
checking.  In this reproduction the "guest" is the set of
:class:`~repro.sim.pipeline.core.CoreEngine` instances; the host services
are modelled by this module:

* :class:`HostAssistedBarrier` starts every thread at the same tick (zero
  start offset), which the paper identifies as a mandatory prerequisite for
  very short tests.
* :class:`GuestSoftwareBarrier` models a conventional in-guest sense
  barrier: each thread spins on shared flags, so threads leave the barrier
  staggered by a random offset and pay extra simulated cycles.  This is the
  baseline for the barrier ablation (benchmark E-A1).

The remaining Table 1 functions (``make_test_thread``,
``mark_test_mem_range``, ``reset_test_mem``, ``verify_reset_all``,
``verify_reset_conflict``) are realised by :class:`repro.core.engine.VerificationEngine`,
which plays the role of the host-side driver of Algorithm 2.
"""

from __future__ import annotations

import random


class HostAssistedBarrier:
    """barrier_wait_precise() with host assistance: zero start offset."""

    name = "host-assisted"

    def __init__(self, base_offset: int = 0) -> None:
        self.base_offset = base_offset

    def start_offsets(self, num_threads: int, rng: random.Random) -> list[int]:
        """Per-thread start offsets in ticks (all identical)."""
        return [self.base_offset] * num_threads

    def overhead_ticks(self, num_threads: int, rng: random.Random) -> int:
        """Simulated cycles consumed by the barrier itself."""
        return 0


class GuestSoftwareBarrier:
    """A guest-implemented sense barrier: staggered exits, real overhead.

    The offsets model the perturbation the paper observed to be "too large"
    for very short tests: threads leave the barrier spread over a window
    proportional to the number of threads and the cost of the coherence
    traffic on the barrier flag.
    """

    name = "guest-software"

    def __init__(self, per_thread_cost: int = 120, jitter: int = 200) -> None:
        self.per_thread_cost = per_thread_cost
        self.jitter = jitter

    def start_offsets(self, num_threads: int, rng: random.Random) -> list[int]:
        offsets = []
        for index in range(num_threads):
            spin = rng.randint(0, self.jitter)
            offsets.append(index * self.per_thread_cost + spin)
        rng.shuffle(offsets)
        return offsets

    def overhead_ticks(self, num_threads: int, rng: random.Random) -> int:
        return num_threads * self.per_thread_cost + rng.randint(0, self.jitter)


def barrier_by_name(name: str) -> HostAssistedBarrier | GuestSoftwareBarrier:
    """Factory used by configuration code and the barrier ablation bench."""
    if name == "host-assisted":
        return HostAssistedBarrier()
    if name == "guest-software":
        return GuestSoftwareBarrier()
    raise ValueError(f"unknown barrier implementation {name!r}")
