"""Full simulated system: cores + L1s + directory/L2 + network + memory.

A :class:`System` executes one *iteration* of a test (one execution of every
thread's operation sequence) and returns an :class:`IterationResult` holding
the observed conflict orders, any protocol error, and deadlock information.
The verification engine (:mod:`repro.core.engine`) runs several iterations
per test-run, resetting test memory in between, exactly as the guest kernel
of paper Algorithm 2 does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.coherence.mesi_l1 import MesiL1Cache
from repro.sim.coherence.mesi_l2 import MesiDirectory
from repro.sim.coherence.tso_cc import TsoCcDirectory, TsoCcL1Cache
from repro.sim.config import SystemConfig
from repro.sim.coverage import CoverageCollector
from repro.sim.faults import FaultSet, ProtocolError
from repro.sim.host import HostAssistedBarrier
from repro.sim.interconnect import Interconnect
from repro.sim.kernel import SimKernel, SimulationLimitError
from repro.sim.memory import MainMemory
from repro.sim.pipeline.core import CoreEngine
from repro.sim.testprogram import TestThread
from repro.sim.trace import ExecutionTrace


@dataclass
class IterationResult:
    """Outcome of one test iteration."""

    trace: ExecutionTrace
    protocol_error: str | None = None
    deadlock: bool = False
    ticks: int = 0
    loads_squashed: int = 0
    kernel_events: int = 0
    messages_sent: int = 0

    @property
    def clean(self) -> bool:
        """True when the iteration completed without protocol error/deadlock."""
        return self.protocol_error is None and not self.deadlock


@dataclass
class System:
    """Factory/runner for single test iterations.

    A fresh micro-architectural state (caches, network) is built per
    iteration; non-determinism between iterations comes from the iteration
    seed, mirroring the differently perturbed executions of the continuously
    running simulation in the paper (§5.1).
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    faults: FaultSet = field(default_factory=FaultSet.none)
    coverage: CoverageCollector = field(default_factory=CoverageCollector)
    barrier: object = field(default_factory=HostAssistedBarrier)
    max_ticks: int = 2_000_000

    def run_iteration(self, threads: list[TestThread], seed: int) -> IterationResult:
        """Execute one iteration of the test described by *threads*."""
        if len(threads) > self.config.num_cores:
            raise ValueError(
                f"test uses {len(threads)} threads but the system has "
                f"{self.config.num_cores} cores")
        kernel = SimKernel(seed=seed, max_ticks=self.max_ticks)
        memory = MainMemory(self.config.memory_latency_min,
                            self.config.memory_latency_max)
        network = Interconnect(kernel, self.config.network_latency_min,
                               self.config.network_latency_max)
        trace = ExecutionTrace()

        if self.config.protocol == "MESI":
            directory = MesiDirectory(kernel, network, self.config, memory,
                                      self.coverage, self.faults)
            l1_class = MesiL1Cache
        else:
            directory = TsoCcDirectory(kernel, network, self.config, memory,
                                       self.coverage, self.faults)
            l1_class = TsoCcL1Cache

        rng = random.Random(seed ^ 0x5EED)
        offsets = self.barrier.start_offsets(len(threads), rng)
        cores: list[CoreEngine] = []
        l1s = []
        for thread in threads:
            l1 = l1_class(thread.pid, kernel, network, self.config,
                          self.coverage, self.faults)
            core = CoreEngine(thread.pid, kernel, l1, thread, trace,
                              self.config, self.faults,
                              random.Random(seed * 31 + thread.pid),
                              start_tick=offsets[thread.pid % len(offsets)])
            l1.invalidation_listener = core.on_invalidation
            cores.append(core)
            l1s.append(l1)

        for core in cores:
            core.start()

        def finished() -> bool:
            return (all(core.done for core in cores)
                    and all(l1.quiescent() for l1 in l1s)
                    and directory.quiescent())

        result = IterationResult(trace=trace)
        try:
            result.ticks = kernel.run(until=finished)
        except ProtocolError as error:
            result.protocol_error = str(error)
        except SimulationLimitError as error:
            result.deadlock = True
            result.protocol_error = None
            result.ticks = kernel.now
            _ = error
        else:
            if not finished():
                # The event queue drained before every core finished: the
                # system is stuck (e.g. a lost wakeup or protocol deadlock).
                result.deadlock = True
        result.loads_squashed = sum(core.loads_squashed for core in cores)
        result.kernel_events = kernel.events_executed
        result.messages_sent = network.messages_sent
        return result
