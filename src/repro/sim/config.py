"""System and test-memory configuration (paper Table 2 and §5.2.1).

The paper evaluates an 8-core out-of-order x86-64 system with 32KB private
L1s and a 1MB shared NUCA L2.  Because our substrate is a pure-Python
simulator, the default configuration is scaled down (4 cores, 4KB L1, 8KB
L2) so that the same *relative* phenomena occur: with 1KB of test memory no
capacity evictions happen, with 8KB of test memory both L1 and L2 evictions
occur (the paper's 512B-partition / 1MB-separation layout serves exactly
this purpose).  The full Table 2 configuration can be instantiated with
:meth:`SystemConfig.paper_table2`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    line_bytes: int
    ways: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"line_bytes*ways={self.line_bytes * self.ways}")
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache dimensions must be positive")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def line_address(self, address: int) -> int:
        return address - (address % self.line_bytes)


@dataclass(frozen=True)
class TestMemoryLayout:
    """Usable test address range (paper §5.2.1).

    The test memory of ``size_bytes`` is partitioned into contiguous blocks
    of ``partition_bytes`` whose starting addresses are separated by
    ``partition_separation`` so that partitions alias onto the same cache
    sets and capacity evictions occur once enough partitions exist.
    """

    size_bytes: int = 8 * 1024
    stride: int = 16
    partition_bytes: int = 512
    partition_separation: int = 1024 * 1024
    base_address: int = 0x10000

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.stride <= 0:
            raise ValueError("size and stride must be positive")
        if self.partition_bytes % self.stride != 0:
            raise ValueError("partition size must be a multiple of the stride")
        if self.size_bytes % self.partition_bytes != 0:
            raise ValueError("size must be a multiple of the partition size")

    @property
    def num_partitions(self) -> int:
        return self.size_bytes // self.partition_bytes

    @property
    def num_slots(self) -> int:
        """Number of distinct stride-aligned addresses in the test memory."""
        return self.size_bytes // self.stride

    def slot_address(self, slot: int) -> int:
        """Map a logical slot index to a physical address.

        Slots walk each 512B partition in order; partitions are placed
        ``partition_separation`` apart so they conflict in the caches.
        """
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        slots_per_partition = self.partition_bytes // self.stride
        partition = slot // slots_per_partition
        offset = (slot % slots_per_partition) * self.stride
        return self.base_address + partition * self.partition_separation + offset

    def all_addresses(self) -> list[int]:
        return [self.slot_address(slot) for slot in range(self.num_slots)]

    @classmethod
    def kib(cls, size_kib: int, stride: int = 16) -> "TestMemoryLayout":
        """Convenience constructor matching the paper's 1KB / 8KB settings."""
        return cls(size_bytes=size_kib * 1024, stride=stride)


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration (scaled analogue of paper Table 2)."""

    num_cores: int = 4
    rob_entries: int = 16
    lsq_entries: int = 12
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=4 * 1024, line_bytes=64, ways=4, hit_latency=3))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=8 * 1024, line_bytes=64, ways=4, hit_latency=30))
    l2_hit_latency_max: int = 80
    memory_latency_min: int = 120
    memory_latency_max: int = 230
    network_latency_min: int = 4
    network_latency_max: int = 18
    issue_width: int = 2
    protocol: str = "MESI"            # "MESI" or "TSO_CC"
    # TSO-CC specific knobs (scaled down so that timestamp-group reuse and
    # timestamp resets/epoch increments occur within short tests).
    tso_cc_timestamp_group: int = 2   # writes sharing one timestamp value
    tso_cc_max_timestamp: int = 4     # timestamp reset threshold
    tso_cc_max_accesses: int = 8      # Shared-line hits before revalidation

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.protocol not in ("MESI", "TSO_CC"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1 and L2 must use the same line size")

    @classmethod
    def paper_table2(cls) -> "SystemConfig":
        """The (unscaled) configuration of paper Table 2."""
        return cls(
            num_cores=8,
            rob_entries=40,
            lsq_entries=32,
            l1=CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=4,
                           hit_latency=3),
            l2=CacheConfig(size_bytes=8 * 128 * 1024, line_bytes=64, ways=4,
                           hit_latency=30),
            l2_hit_latency_max=80,
            memory_latency_min=120,
            memory_latency_max=230,
        )

    def with_protocol(self, protocol: str) -> "SystemConfig":
        from dataclasses import replace
        return replace(self, protocol=protocol)

    def describe(self) -> dict[str, str]:
        """Human-readable parameter table (used by the Table 2 benchmark)."""
        return {
            "Core-count": f"{self.num_cores} (out-of-order)",
            "LSQ entries": str(self.lsq_entries),
            "ROB entries": str(self.rob_entries),
            "L1 cache (private)": (
                f"{self.l1.size_bytes // 1024}KB, {self.l1.line_bytes}B lines, "
                f"{self.l1.ways}-way"),
            "L1 hit latency": f"{self.l1.hit_latency} cycles",
            "L2 cache (shared)": (
                f"{self.l2.size_bytes // 1024}KB, {self.l2.line_bytes}B lines, "
                f"{self.l2.ways}-way"),
            "L2 hit latency": f"{self.l2.hit_latency} to {self.l2_hit_latency_max} cycles",
            "Memory latency": (
                f"{self.memory_latency_min} to {self.memory_latency_max} cycles"),
            "Coherence protocol": self.protocol,
        }
