"""Observation of conflict orders during execution (paper §4.1).

Because we are in simulation (pre-silicon), all conflict orders are visible:
every committed read records which write produced its value (rf), and every
write serialisation records which value it overwrote (co).  Values are the
globally unique write identifiers assigned at test construction time, so the
mapping from an observed value back to the producing write event is exact.
Value ``0`` denotes the initial value of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ReadRecord:
    """One committed read: which value (write id) it observed."""

    op_id: int
    pid: int
    address: int
    value: int


@dataclass(frozen=True)
class WriteRecord:
    """One serialised write: its value and the value it overwrote."""

    op_id: int
    pid: int
    address: int
    value: int
    overwritten: int


@dataclass(frozen=True)
class RmwRecord:
    """One atomic read-modify-write (maps to a read and a write event)."""

    op_id: int
    pid: int
    address: int
    read_value: int
    written_value: int
    overwritten: int


@dataclass
class ExecutionTrace:
    """Everything observed during one test iteration."""

    reads: list[ReadRecord] = field(default_factory=list)
    writes: list[WriteRecord] = field(default_factory=list)
    rmws: list[RmwRecord] = field(default_factory=list)
    commit_order: dict[int, list[int]] = field(default_factory=dict)

    def record_read(self, op_id: int, pid: int, address: int, value: int) -> None:
        self.reads.append(ReadRecord(op_id, pid, address, value))
        self.commit_order.setdefault(pid, []).append(op_id)

    def record_write(self, op_id: int, pid: int, address: int, value: int,
                     overwritten: int, commit: bool = True) -> None:
        """Record one serialised write.

        ``commit=False`` is the two-phase simulator path: the pipeline
        commits a write into its store buffer (appearing in
        ``commit_order`` via :meth:`record_commit`) long before the
        cache serialises it and this method runs.  Every other caller
        — ingestion bridges in particular — records commit and
        serialisation as one event, so committing here is the default:
        the three ``record_*`` methods then behave uniformly.
        """
        self.writes.append(WriteRecord(op_id, pid, address, value, overwritten))
        if commit:
            self.commit_order.setdefault(pid, []).append(op_id)

    def record_commit(self, op_id: int, pid: int) -> None:
        """Record the commit of a non-read operation (for program order)."""
        self.commit_order.setdefault(pid, []).append(op_id)

    def record_rmw(self, op_id: int, pid: int, address: int, read_value: int,
                   written_value: int, overwritten: int) -> None:
        self.rmws.append(RmwRecord(op_id, pid, address, read_value,
                                   written_value, overwritten))
        self.commit_order.setdefault(pid, []).append(op_id)

    def validate(self) -> None:
        """Reject traces whose recorded ops are missing from commit order.

        Guards the historical asymmetry this module shipped with:
        ``record_write`` did not append to ``commit_order`` while
        ``record_read``/``record_rmw`` did, so a caller treating the
        three methods uniformly silently dropped writes from program
        order.  Raises :class:`ValueError` naming the missing ops.
        """
        committed = {(pid, op_id)
                     for pid, op_ids in self.commit_order.items()
                     for op_id in op_ids}
        missing = [(record.pid, record.op_id)
                   for records in (self.reads, self.writes, self.rmws)
                   for record in records
                   if (record.pid, record.op_id) not in committed]
        if missing:
            listing = ", ".join(f"op {op_id} (thread {pid})"
                                for pid, op_id in sorted(missing))
            raise ValueError(
                f"trace records ops absent from commit_order: {listing}")

    @property
    def num_events(self) -> int:
        """Total memory events (RMWs count as two: a read and a write)."""
        return len(self.reads) + len(self.writes) + 2 * len(self.rmws)

    def observed_value_sources(self) -> set[int]:
        """The set of write values observed by reads (0 = initial value)."""
        sources = {read.value for read in self.reads}
        sources.update(rmw.read_value for rmw in self.rmws)
        return sources
