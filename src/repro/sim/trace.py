"""Observation of conflict orders during execution (paper §4.1).

Because we are in simulation (pre-silicon), all conflict orders are visible:
every committed read records which write produced its value (rf), and every
write serialisation records which value it overwrote (co).  Values are the
globally unique write identifiers assigned at test construction time, so the
mapping from an observed value back to the producing write event is exact.
Value ``0`` denotes the initial value of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ReadRecord:
    """One committed read: which value (write id) it observed."""

    op_id: int
    pid: int
    address: int
    value: int


@dataclass(frozen=True)
class WriteRecord:
    """One serialised write: its value and the value it overwrote."""

    op_id: int
    pid: int
    address: int
    value: int
    overwritten: int


@dataclass(frozen=True)
class RmwRecord:
    """One atomic read-modify-write (maps to a read and a write event)."""

    op_id: int
    pid: int
    address: int
    read_value: int
    written_value: int
    overwritten: int


@dataclass
class ExecutionTrace:
    """Everything observed during one test iteration."""

    reads: list[ReadRecord] = field(default_factory=list)
    writes: list[WriteRecord] = field(default_factory=list)
    rmws: list[RmwRecord] = field(default_factory=list)
    commit_order: dict[int, list[int]] = field(default_factory=dict)

    def record_read(self, op_id: int, pid: int, address: int, value: int) -> None:
        self.reads.append(ReadRecord(op_id, pid, address, value))
        self.commit_order.setdefault(pid, []).append(op_id)

    def record_write(self, op_id: int, pid: int, address: int, value: int,
                     overwritten: int) -> None:
        self.writes.append(WriteRecord(op_id, pid, address, value, overwritten))

    def record_commit(self, op_id: int, pid: int) -> None:
        """Record the commit of a non-read operation (for program order)."""
        self.commit_order.setdefault(pid, []).append(op_id)

    def record_rmw(self, op_id: int, pid: int, address: int, read_value: int,
                   written_value: int, overwritten: int) -> None:
        self.rmws.append(RmwRecord(op_id, pid, address, read_value,
                                   written_value, overwritten))
        self.commit_order.setdefault(pid, []).append(op_id)

    @property
    def num_events(self) -> int:
        """Total memory events (RMWs count as two: a read and a write)."""
        return len(self.reads) + len(self.writes) + 2 * len(self.rmws)

    def observed_value_sources(self) -> set[int]:
        """The set of write values observed by reads (0 = initial value)."""
        sources = {read.value for read in self.reads}
        sources.update(rmw.read_value for rmw in self.rmws)
        return sources
