"""Set-associative cache array with LRU replacement.

The array is protocol-agnostic: each line holds a protocol state string,
word-granular data and arbitrary metadata used by the coherence controllers
(sharer lists, timestamps, access counters...).  Controllers own the state
machine; the array only provides lookup, allocation and LRU victim
selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sim.config import CacheConfig


@dataclass
class CacheLine:
    """One cache line: tag (line address), protocol state, word data."""

    line_address: int
    state: str
    words: dict[int, int] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)
    last_use: int = 0

    def read_word(self, address: int, default: int = 0) -> int:
        return self.words.get(address, default)

    def write_word(self, address: int, value: int) -> int:
        previous = self.words.get(address, 0)
        self.words[address] = value
        return previous


class CacheArray:
    """Set-associative array of :class:`CacheLine` with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)]
        self._use_counter = 0

    def _set_for(self, line_address: int) -> dict[int, CacheLine]:
        return self._sets[self.config.set_index(line_address)]

    def line_address(self, address: int) -> int:
        return self.config.line_address(address)

    def lookup(self, address: int, touch: bool = True) -> CacheLine | None:
        """Find the line containing *address* (None on miss)."""
        line_address = self.line_address(address)
        line = self._set_for(line_address).get(line_address)
        if line is not None and touch:
            self._use_counter += 1
            line.last_use = self._use_counter
        return line

    def allocate(self, line_address: int, state: str,
                 words: dict[int, int] | None = None) -> CacheLine:
        """Insert a new line.  The set must have a free way (see needs_victim)."""
        if line_address % self.config.line_bytes != 0:
            raise ValueError(f"unaligned line address {line_address:#x}")
        cache_set = self._set_for(line_address)
        if line_address in cache_set:
            raise ValueError(f"line {line_address:#x} already present")
        if len(cache_set) >= self.config.ways:
            raise ValueError(
                f"set for {line_address:#x} is full; evict a victim first")
        self._use_counter += 1
        line = CacheLine(line_address=line_address, state=state,
                         words=dict(words or {}), last_use=self._use_counter)
        cache_set[line_address] = line
        return line

    def needs_victim(self, line_address: int) -> bool:
        """True when allocating *line_address* requires evicting a line."""
        cache_set = self._set_for(self.line_address(line_address))
        return (self.line_address(line_address) not in cache_set
                and len(cache_set) >= self.config.ways)

    def select_victim(self, line_address: int,
                      exclude_states: tuple[str, ...] = ()) -> CacheLine | None:
        """Pick the LRU line of the target set, skipping excluded states.

        Lines in transient states must not be chosen as victims; callers
        pass those states via *exclude_states*.  Returns None when every
        line in the set is excluded (the requester must retry later).
        """
        cache_set = self._set_for(self.line_address(line_address))
        candidates = [line for line in cache_set.values()
                      if line.state not in exclude_states]
        if not candidates:
            return None
        return min(candidates, key=lambda line: line.last_use)

    def evict(self, line_address: int) -> CacheLine:
        """Remove and return the line (must be present)."""
        cache_set = self._set_for(line_address)
        try:
            return cache_set.pop(line_address)
        except KeyError:
            raise KeyError(f"line {line_address:#x} not present") from None

    def contains(self, address: int) -> bool:
        return self.lookup(address, touch=False) is not None

    def all_lines(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def flush_all(self) -> list[CacheLine]:
        """Drop every line (used by reset_test_mem); returns dropped lines."""
        dropped: list[CacheLine] = []
        for cache_set in self._sets:
            dropped.extend(cache_set.values())
            cache_set.clear()
        return dropped

    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)
