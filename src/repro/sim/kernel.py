"""Discrete-event simulation kernel.

The kernel maintains a priority queue of timestamped events.  Components
schedule callables at future ticks; the kernel executes them in
(time, sequence) order so that execution is fully deterministic for a given
seed.  Non-determinism between test iterations comes exclusively from the
seeded random number generator used to perturb latencies, mirroring the way
consecutive test executions in a continuously running full-system simulation
are perturbed differently (paper §5.1).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable


class SimulationLimitError(RuntimeError):
    """Raised when a simulation exceeds its maximum tick or event budget."""


@dataclass(order=True)
class _ScheduledEvent:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimKernel.schedule`, allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class SimKernel:
    """Event-driven simulation kernel with a deterministic seeded RNG."""

    def __init__(self, seed: int = 0, max_ticks: int = 50_000_000,
                 max_events: int = 20_000_000) -> None:
        self.rng = random.Random(seed)
        self.now = 0
        self.max_ticks = max_ticks
        self.max_events = max_events
        self._queue: list[_ScheduledEvent] = []
        self._seq = 0
        self._events_executed = 0

    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* to run ``delay`` ticks from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = _ScheduledEvent(self.now + int(delay), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* at an absolute tick (must not be in the past)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.schedule(time - self.now, callback)

    def jitter(self, low: int, high: int) -> int:
        """Return a random latency in ``[low, high]`` from the kernel RNG."""
        if low > high:
            raise ValueError(f"invalid jitter range [{low}, {high}]")
        return self.rng.randint(low, high)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def run(self, until: Callable[[], bool] | None = None) -> int:
        """Run until the queue drains or *until* returns true.

        Returns the tick at which the run stopped.  Raises
        :class:`SimulationLimitError` if the tick or event budget is
        exceeded, which normally indicates a deadlock/livelock in the
        simulated system (itself a reportable verification outcome).
        """
        while self._queue:
            if until is not None and until():
                break
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_executed += 1
            if self.now > self.max_ticks:
                raise SimulationLimitError(
                    f"simulation exceeded {self.max_ticks} ticks "
                    "(possible deadlock)")
            if self._events_executed > self.max_events:
                raise SimulationLimitError(
                    f"simulation exceeded {self.max_events} events "
                    "(possible livelock)")
            event.callback()
        return self.now

    @property
    def events_executed(self) -> int:
        return self._events_executed
