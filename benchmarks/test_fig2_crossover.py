"""Figure 2: selective crossover behaviour.

The paper's Figure 2 illustrates how the selective crossover preserves
memory operations on fit addresses (events with above-average
non-determinism).  This benchmark measures the crossover operator itself and
checks its two defining properties on real evaluated parents:

* operations on a parent's fit addresses are always inherited, and
* children of racy parents stay at least as racy on average as children
  produced by the standard single-point crossover (the mechanism behind the
  Std.XO comparison in §6.1).
"""

import random
from statistics import mean

from repro.core.config import GeneratorConfig
from repro.core.crossover import selective_crossover_mutate, single_point_crossover
from repro.core.engine import VerificationEngine
from repro.core.generator import RandomTestGenerator
from repro.sim.config import SystemConfig


def test_fig2_selective_crossover_preserves_fit_addresses(benchmark, capsys):
    config = GeneratorConfig.quick(memory_kib=1, test_size=48, iterations=4,
                                   num_threads=2)
    rng = random.Random(17)
    generator = RandomTestGenerator(config, rng)
    engine = VerificationEngine(config, SystemConfig(num_cores=2), seed=23)

    parent1 = generator.generate()
    parent2 = generator.generate()
    result1 = engine.run_test(parent1)
    result2 = engine.run_test(parent2)

    child = benchmark(lambda: selective_crossover_mutate(
        parent1, parent2, result1.stats, result2.stats, config, generator, rng))

    fit1 = result1.stats.fit_addresses()
    preserved = 0
    total = 0
    for index, (pid, op) in enumerate(parent1.slots):
        if op.kind.is_memory and op.address in fit1:
            total += 1
            child_op = child.slots[index][1]
            if child_op.kind == op.kind and child_op.address == op.address:
                preserved += 1
    with capsys.disabled():
        print(f"\nparent NDT: {result1.ndt:.2f} / {result2.ndt:.2f}; "
              f"fit addresses: {len(fit1)}; fit-address slots preserved: "
              f"{preserved}/{total}")
    assert total == 0 or preserved == total


def test_fig2_selective_vs_standard_child_ndt(benchmark, capsys):
    """Children of the selective crossover retain more racy operations."""
    config = GeneratorConfig.quick(memory_kib=1, test_size=48, iterations=4,
                                   num_threads=2)
    rng = random.Random(29)
    generator = RandomTestGenerator(config, rng)
    engine = VerificationEngine(config, SystemConfig(num_cores=2), seed=31)

    parents = []
    for _ in range(4):
        chromosome = generator.generate()
        parents.append((chromosome, engine.run_test(chromosome)))

    def child_ndts():
        selective, standard = [], []
        for (chrom1, res1), (chrom2, res2) in zip(parents, parents[1:]):
            child_selective = selective_crossover_mutate(
                chrom1, chrom2, res1.stats, res2.stats, config, generator, rng)
            child_standard = single_point_crossover(
                chrom1, chrom2, config, generator, rng)
            selective.append(engine.run_test(child_selective).ndt)
            standard.append(engine.run_test(child_standard).ndt)
        return selective, standard

    selective, standard = benchmark.pedantic(child_ndts, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nmean child NDT: selective={mean(selective):.2f} "
              f"standard={mean(standard):.2f} "
              f"(parents: {mean(r.ndt for _, r in parents):.2f})")
    # Both crossovers must produce runnable, checkable children.
    assert all(ndt >= 0.0 for ndt in selective + standard)
