"""Table 5: bugs found when running stateless generators for longer.

The paper's observation: because pseudo-random and litmus generators are
stateless, running S samples of budget B is equivalent to one run of budget
S*B, yet even at 10x budget they do not reach 100% of the bugs, while
McVerSi-ALL (8KB) finds everything within 1x.  This benchmark reproduces the
summary with several independent samples per generator/bug pair and reports
the fraction of bugs found within 1x / 3x of the per-sample budget.
"""

import math

from benchmarks.conftest import bench_generator_config
from repro.core.campaign import GeneratorKind
from repro.harness.experiment import (BugCoverageExperiment, ExperimentSettings,
                                      budget_scaling_summary)
from repro.harness.reporting import format_table
from repro.sim.config import SystemConfig
from repro.sim.faults import Fault

BENCH_FAULTS = [
    Fault.MESI_LQ_SM_INV,
    Fault.LQ_NO_TSO,
    Fault.SQ_NO_FIFO,
]

CONFIGURATIONS = [
    (GeneratorKind.MCVERSI_ALL, 8),
    (GeneratorKind.MCVERSI_RAND, 8),
    (GeneratorKind.DIY_LITMUS, 1),
]


def test_table5_budget_scaling(benchmark, capsys):
    settings = ExperimentSettings(
        generator_config=bench_generator_config(memory_kib=8),
        system_config=SystemConfig(),
        samples=3,
        max_evaluations=12,
        seed=31,
    )
    experiment = BugCoverageExperiment(settings, faults=BENCH_FAULTS,
                                       configurations=CONFIGURATIONS)
    benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    summary = budget_scaling_summary(experiment.cells, multipliers=(1, 3))

    rows = []
    for (kind, memory_kib), fractions in summary.items():
        label = f"{kind.value} ({memory_kib}KB)"
        row = [label]
        for multiplier in (1, 3):
            value = fractions[multiplier]
            row.append("N/A" if math.isnan(value) else f"{value:.0%}")
        rows.append(row)
    with capsys.disabled():
        print()
        print(format_table(["Configuration", "within 1x budget", "within 3x budget"],
                           rows, title="Table 5 (scaled): bugs found vs budget"))

    # Stateless generators never find fewer bugs with more budget.
    for (kind, _), fractions in summary.items():
        if kind.is_stateless:
            assert fractions[3] >= fractions[1]
