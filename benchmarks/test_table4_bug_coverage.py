"""Table 4: bug coverage per generator (the paper's headline result).

For a representative subset of the 11 studied bugs, each test generation
strategy (McVerSi-ALL, McVerSi-RAND at 1KB/8KB, diy-litmus) hunts the bug
under the same test-run evaluation budget.  The paper's shape to look for:

* McVerSi-ALL (8KB) finds the most bugs (all of them, given enough budget);
* the eviction-dependent bugs are only reachable with 8KB of test memory;
* litmus tests find only a small subset (the pipeline/store-buffer bugs).

Budgets here are tiny (tens of evaluations) so the suite runs in minutes;
raise ``REPRO_BENCH_SCALE`` to sharpen the separation.
"""

import pytest

from benchmarks.conftest import bench_generator_config
from repro.core.campaign import GeneratorKind
from repro.harness.experiment import BugCoverageExperiment, ExperimentSettings
from repro.harness.reporting import format_table
from repro.sim.config import SystemConfig
from repro.sim.faults import Fault, FaultSet

# A representative subset of paper Table 4's rows: two real pipeline/protocol
# interaction bugs, one protocol race, one store-buffer bug, one TSO-CC bug.
BENCH_FAULTS = [
    Fault.MESI_LQ_SM_INV,
    Fault.MESI_PUTX_RACE,
    Fault.LQ_NO_TSO,
    Fault.SQ_NO_FIFO,
    Fault.TSOCC_COMPARE,
]

CONFIGURATIONS = [
    (GeneratorKind.MCVERSI_ALL, 8),
    (GeneratorKind.MCVERSI_RAND, 1),
    (GeneratorKind.MCVERSI_RAND, 8),
    (GeneratorKind.DIY_LITMUS, 1),
]


@pytest.fixture(scope="module")
def table4_cells(scale=1):
    settings = ExperimentSettings(
        generator_config=bench_generator_config(memory_kib=8),
        system_config=SystemConfig(),
        samples=1,
        max_evaluations=25,
        seed=7,
    )
    experiment = BugCoverageExperiment(settings, faults=BENCH_FAULTS,
                                       configurations=CONFIGURATIONS)
    experiment.run()
    return experiment


def test_table4_bug_coverage(benchmark, capsys, table4_cells):
    experiment = table4_cells
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = experiment.table_rows()
    with capsys.disabled():
        print()
        print(format_table(experiment.table_headers(), rows,
                           title="Table 4 (scaled): bug found (mean evaluations)"))
    found_by_config = {}
    for cell in experiment.cells:
        key = (cell.kind, cell.memory_kib)
        found_by_config.setdefault(key, 0)
        found_by_config[key] += cell.found_count
    # The GP/random generators must find at least as many bugs as litmus.
    litmus_found = found_by_config[(GeneratorKind.DIY_LITMUS, 1)]
    best_mcversi = max(found_by_config[(GeneratorKind.MCVERSI_ALL, 8)],
                       found_by_config[(GeneratorKind.MCVERSI_RAND, 8)])
    assert best_mcversi >= litmus_found


def test_table4_store_buffer_bug_found_quickly(benchmark, capsys):
    """The SQ+no-FIFO bug is found by every generator within a few test-runs."""
    from repro.core.campaign import Campaign

    def hunt():
        campaign = Campaign(GeneratorKind.MCVERSI_RAND,
                            bench_generator_config(memory_kib=1),
                            SystemConfig(),
                            faults=FaultSet.of(Fault.SQ_NO_FIFO),
                            seed=3)
        return campaign.run(max_evaluations=15)

    result = benchmark.pedantic(hunt, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nSQ+no-FIFO: found={result.found} "
              f"evaluations_to_find={result.evaluations_to_find}")
    assert result.found
