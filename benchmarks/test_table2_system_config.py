"""Table 2: system parameters.

Regenerates the system-parameter table of the paper and measures how fast a
full system can be instantiated and run for one empty iteration (a proxy for
per-test setup overhead).
"""

from repro.harness.reporting import format_key_value
from repro.sim.config import SystemConfig
from repro.sim.coverage import CoverageCollector
from repro.sim.system import System
from repro.sim.testprogram import TestThread


def test_table2_system_parameters(benchmark, capsys):
    paper = SystemConfig.paper_table2()
    scaled = SystemConfig()

    def instantiate_and_idle():
        system = System(config=scaled, coverage=CoverageCollector())
        threads = [TestThread(pid, ()) for pid in range(scaled.num_cores)]
        return system.run_iteration(threads, seed=1)

    result = benchmark(instantiate_and_idle)
    assert result.clean
    with capsys.disabled():
        print()
        print(format_key_value("Table 2 (paper configuration)", paper.describe()))
        print()
        print(format_key_value("Table 2 (scaled configuration used here)",
                               scaled.describe()))
