"""Figure 1: the message-passing example.

The paper motivates MCM verification with the MP litmus test: under TSO the
outcome ``r1 = 1 and r2 = 0`` is forbidden.  This benchmark runs the MP test
on the correct system (the outcome must never be observed) and on a system
with the SQ+no-FIFO bug, whose out-of-order store visibility makes the
forbidden outcome appear (the LQ+no-TSO bug needs warmed caches across
iterations and is exercised by the directed scenarios instead).
"""

from repro.core.config import GeneratorConfig
from repro.core.engine import VerificationEngine
from repro.litmus.corpus import litmus_by_name
from repro.sim.config import SystemConfig
from repro.sim.faults import Fault, FaultSet


def run_mp(faults: FaultSet, attempts: int, seed: int = 5):
    mp = litmus_by_name("MP")
    config = GeneratorConfig.quick(memory_kib=1, num_threads=mp.num_threads,
                                   test_size=len(mp.chromosome), iterations=8)
    engine = VerificationEngine(config, SystemConfig(num_cores=2),
                                faults=faults, seed=seed)
    for attempt in range(attempts):
        if engine.run_test(mp.chromosome).bug_found:
            return attempt + 1
    return None


def test_fig1_mp_never_fails_on_correct_hardware(benchmark, capsys):
    found = benchmark.pedantic(lambda: run_mp(FaultSet.none(), attempts=10),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nMP on correct MESI hardware: forbidden outcome observed = "
              f"{found is not None} (must be False)")
    assert found is None


def test_fig1_mp_detects_store_reordering(benchmark, capsys):
    """With the SQ+no-FIFO bug the writer's stores become visible out of
    order, so the MP forbidden outcome appears within a few test-runs."""
    found = benchmark.pedantic(
        lambda: run_mp(FaultSet.of(Fault.SQ_NO_FIFO), attempts=60),
        rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nMP with SQ+no-FIFO bug: forbidden outcome after "
              f"{found} test-runs")
    assert found is not None
