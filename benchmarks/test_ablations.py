"""Ablation benchmarks for the design choices the paper calls out.

* E-A1 (§4): the host-assisted precise barrier is what makes very short
  tests viable - a guest software barrier staggers thread starts by hundreds
  of cycles, which for short tests is a large fraction of the runtime.
* E-A2 (§5.2.1): the axiomatic checker accounts for a bounded fraction of
  the per-test-run wall-clock time (the paper reports 30-40%).
* E-A3 (§3.2): the adaptive-coverage cut-off doubles when progress stalls,
  refocusing fitness on rare transitions.
* E-A4 (§6.1): NDT of the evolving population - the selective crossover is
  the mechanism that pushes NDT up at large test-memory sizes.
"""

import random

from benchmarks.conftest import bench_generator_config
from repro.core.campaign import Campaign, GeneratorKind
from repro.core.engine import VerificationEngine
from repro.core.fitness import AdaptiveCoverageFitness
from repro.core.generator import RandomTestGenerator
from repro.sim.config import SystemConfig
from repro.sim.coverage import CoverageCollector
from repro.sim.faults import FaultSet
from repro.sim.host import GuestSoftwareBarrier, HostAssistedBarrier


def test_ablation_host_barrier_start_offsets(benchmark, capsys):
    """E-A1: start-offset spread of host-assisted vs guest software barriers."""
    rng = random.Random(3)
    host = HostAssistedBarrier()
    guest = GuestSoftwareBarrier()

    def spreads():
        host_spread = []
        guest_spread = []
        for _ in range(200):
            host_offsets = host.start_offsets(8, rng)
            guest_offsets = guest.start_offsets(8, rng)
            host_spread.append(max(host_offsets) - min(host_offsets))
            guest_spread.append(max(guest_offsets) - min(guest_offsets))
        return (sum(host_spread) / len(host_spread),
                sum(guest_spread) / len(guest_spread))

    host_mean, guest_mean = benchmark(spreads)
    with capsys.disabled():
        print(f"\nmean thread start-offset spread: host-assisted={host_mean:.0f} "
              f"ticks, guest software barrier={guest_mean:.0f} ticks")
    assert host_mean == 0
    assert guest_mean > 100


def test_ablation_checker_cost_fraction(benchmark, capsys):
    """E-A2: fraction of test-run time spent in the MCM checker."""
    config = bench_generator_config(memory_kib=8)
    engine = VerificationEngine(config, SystemConfig(), seed=41)
    generator = RandomTestGenerator(config, random.Random(41))

    def run_batch():
        sim = check = 0.0
        for _ in range(4):
            result = engine.run_test(generator.generate())
            sim += result.sim_seconds
            check += result.check_seconds
        return sim, check

    sim_seconds, check_seconds = benchmark.pedantic(run_batch, rounds=1,
                                                    iterations=1)
    fraction = check_seconds / (sim_seconds + check_seconds)
    with capsys.disabled():
        print(f"\nchecker fraction of test-run time: {fraction:.1%} "
              f"(paper reports 30-40% on gem5)")
    assert 0.0 < fraction < 0.9


def test_ablation_adaptive_cutoff_doubles(benchmark, capsys):
    """E-A3: the rarity cut-off doubles once progress stalls."""
    coverage = CoverageCollector()
    for _ in range(20):
        coverage.record("L1", "I", "Load")
        coverage.record("L1", "S", "Store")

    def evaluate_until_doubled():
        fitness = AdaptiveCoverageFitness(coverage, initial_cutoff=2,
                                          low_threshold=0.2, patience=5)
        evaluations = 0
        while fitness.cutoff == 2 and evaluations < 100:
            fitness.evaluate(frozenset())
            evaluations += 1
        return evaluations, fitness.cutoff

    evaluations, cutoff = benchmark(evaluate_until_doubled)
    with capsys.disabled():
        print(f"\ncut-off doubled to {cutoff} after {evaluations} stalled evaluations")
    assert cutoff == 4
    assert evaluations == 5


def test_ablation_ndt_by_memory_size(benchmark, capsys):
    """E-A4: small test memories are automatically racy, large ones are not.

    The paper observes that 1KB configurations start with NDT above 2 while
    8KB configurations start around 1.1 - the gap the selective crossover
    has to close.
    """
    def mean_initial_ndt(memory_kib: int) -> float:
        config = bench_generator_config(memory_kib=memory_kib)
        campaign = Campaign(GeneratorKind.MCVERSI_RAND, config, SystemConfig(),
                            faults=FaultSet.none(), seed=51)
        result = campaign.run(max_evaluations=6)
        history = result.ndt_history or [0.0]
        return sum(history) / len(history)

    def both():
        return mean_initial_ndt(1), mean_initial_ndt(8)

    ndt_1k, ndt_8k = benchmark.pedantic(both, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nmean NDT of random tests: 1KB={ndt_1k:.2f}  8KB={ndt_8k:.2f}")
    assert ndt_1k >= ndt_8k
