"""Table 6: maximum total transition coverage per protocol and generator.

On fault-free MESI and TSO-CC systems, each generator runs a fixed budget of
test-runs and the maximum total structural coverage (fraction of protocol
transitions exercised) is reported.  Expected shape (paper §6.2): the 8KB
configurations reach clearly higher coverage than 1KB (evictions exercise
the replacement/writeback transitions), and coverage-directed generation is
at least as good as random at equal memory size.
"""

from benchmarks.conftest import bench_generator_config
from repro.core.campaign import GeneratorKind
from repro.harness.experiment import CoverageExperiment, ExperimentSettings
from repro.harness.reporting import format_table
from repro.sim.config import SystemConfig

CONFIGURATIONS = [
    (GeneratorKind.MCVERSI_ALL, 1),
    (GeneratorKind.MCVERSI_ALL, 8),
    (GeneratorKind.MCVERSI_RAND, 1),
    (GeneratorKind.MCVERSI_RAND, 8),
    (GeneratorKind.DIY_LITMUS, 1),
]


def test_table6_transition_coverage(benchmark, capsys):
    settings = ExperimentSettings(
        generator_config=bench_generator_config(memory_kib=8),
        system_config=SystemConfig(),
        samples=1,
        max_evaluations=15,
        seed=13,
    )
    experiment = CoverageExperiment(settings, protocols=("MESI", "TSO_CC"),
                                    configurations=CONFIGURATIONS)
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(experiment.table_headers(), experiment.table_rows(),
                           title="Table 6 (scaled): max total transition coverage"))

    mesi_8k_all = results[("MESI", GeneratorKind.MCVERSI_ALL, 8)]
    mesi_1k_all = results[("MESI", GeneratorKind.MCVERSI_ALL, 1)]
    # 8KB test memory exercises evictions and therefore more transitions.
    assert mesi_8k_all >= mesi_1k_all
    # Every configuration exercises a non-trivial part of the protocol.
    assert all(coverage > 0.0 for coverage in results.values())
