"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation in
miniature: the workloads, generators and checkers are the real ones, but the
evaluation budgets (test-run counts, samples, test sizes) are scaled down so
the whole suite completes in minutes on a laptop rather than the paper's
24-hour-per-sample gem5 campaigns.  Set ``REPRO_BENCH_SCALE`` (default 1) to
a larger integer to run proportionally longer campaigns; the qualitative
shape of the results (who finds which bug, who reaches higher coverage) is
already visible at scale 1.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import GeneratorConfig
from repro.sim.config import SystemConfig


def bench_scale() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()


@pytest.fixture(scope="session")
def bench_system_config() -> SystemConfig:
    return SystemConfig()


def bench_generator_config(memory_kib: int, scale: int = 1) -> GeneratorConfig:
    """The scaled-down Table 3 configuration used by the benchmarks."""
    return GeneratorConfig.quick(
        memory_kib=memory_kib,
        num_threads=4,
        test_size=64 * min(scale, 4),
        iterations=3,
        population_size=10 * min(scale, 4),
    )
