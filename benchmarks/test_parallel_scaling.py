"""Scaling of the parallel campaign orchestrator (the "fast" in McVerSi).

Two Table-4-style sweeps are measured:

* a *homogeneous* 8-seed sweep, run serially and on the 4-worker
  work-stealing pool — campaigns are embarrassingly parallel, so on a host
  with >= 4 usable CPUs the pool should finish at least ~2x faster;
* a *heterogeneous* sweep (mixed ``max_evaluations``: a few long shards
  among many short ones), run serially, on the work-stealing scheduler
  with chunked campaigns, and on the static scheduler — the work-stealing
  pool should beat the static partition, which idles every worker behind
  the block that drew the long shards.

The same heterogeneous sweep is additionally run with
``chunk_sizing="adaptive"`` against the fixed-chunk work-stealing
baseline: the controller targets a small per-chunk wall-clock, so chunks
shrink toward the sweep's tail and the last straggler chunk is finer
grained — measured here as *tail latency*, the gap between the last two
shard completions.  Both wall-clock and tail latency land in the JSON
artifact as the adaptive-vs-fixed row.

A kernel row race-tests the checker backends on one shared batch of
random candidate executions: the pure-python DFS checker (one
``Checker.check`` per execution) against the vectorized matrix kernel
(``batch_check_executions`` checking the whole batch on stacked
adjacency matrices).  Verdicts must agree execution-for-execution and
the matrix kernel must check more executions per second; both rates and
the speedup land in the JSON artifact's ``kernel`` row.

A serialization row compares the checkpoint transport protocols on a
real mid-campaign checkpoint: the old double-serialization path (the
checkpoint graph pickled for telemetry and again on every hop) against
the current single-serialization ``ChunkPayload`` path (pickled once on
the worker, bytes forwarded verbatim) — pickle seconds and bytes saved
per paused chunk land in the JSON artifact's ``serialization`` row.

Per-shard results are bit-identical regardless of scheduler, worker count
or chunking (seeds derive from the matrix position and checkpoints carry
all cross-evaluation state); the determinism assertions always run.  The
wall-clock assertions only run when the host actually exposes enough CPUs
to this process — asserting parallel speedup on a single-core container
would measure scheduler noise, not the orchestrator — and can be relaxed
to a skip with ``REPRO_STRICT_SCALING=0`` on noisy shared CI runners.

Set ``REPRO_BENCH_JSON=/path/to/BENCH_parallel.json`` to dump the measured
wall-clock numbers as JSON (CI uploads this as an artifact on every push
to main, so the perf trajectory is tracked across commits).
"""

import json
import os
import pickle
import platform
import random
import time
from dataclasses import replace

import pytest

from benchmarks.conftest import bench_generator_config
from repro.consistency.checker import Checker
from repro.consistency.execution import execution_from_trace
from repro.consistency.matrix import HAVE_NUMPY
from repro.consistency.models import model_by_name
from repro.core.campaign import GeneratorKind
from repro.harness.parallel import (ChunkOutcome, ChunkTask, campaign_matrix,
                                    default_workers, execute_chunk_task,
                                    run_campaigns)
from repro.harness.reporting import format_speedup, format_sweep_report
from repro.sim.config import SystemConfig
from repro.sim.faults import Fault
from repro.sim.testprogram import OpKind, TestOp, TestThread
from repro.sim.trace import ExecutionTrace

WORKERS = 4
TCP_WORKERS = 2
SEEDS = 8
CHUNK_EVALUATIONS = 4
#: Fixed chunk size of the adaptive-vs-fixed comparison: deliberately
#: coarse so the fixed baseline pays a visible last-chunk straggler tax.
COARSE_CHUNK_EVALUATIONS = 12
#: Adaptive target: small enough that the controller shrinks chunks well
#: below the coarse seed once it has measured the evaluation rate.
TARGET_CHUNK_SECONDS = 0.05
#: Per-shard budgets of the heterogeneous sweep: two stragglers in front
#: (exactly where a contiguous static partition hurts most) among short
#: shards.
HETERO_BUDGETS = (36, 36, 6, 6, 6, 6, 6, 6)
#: Memoization benchmark matrix: litmus campaigns recycle a small set of
#: execution shapes, so the verdict cache sees a high hit-rate; enough
#: evaluations that the saved cycle checks rise above timer noise.
MEMO_SEEDS = 8
MEMO_EVALUATIONS = 24
MEMO_CHUNK_EVALUATIONS = 8
#: Interleaved repetitions of the memo-on/memo-off pair; the best (least
#: noisy) check-time of each side is compared.
MEMO_ROUNDS = 3
#: Checker-kernel benchmark batch: enough random executions that the
#: matrix kernel's batched Kahn passes amortize the encoding cost, each
#: execution big enough (threads x ops) that the python DFS pays a
#: visible per-execution graph-walk tax.
KERNEL_EXECUTIONS = 64
KERNEL_THREADS = 4
KERNEL_OPS_PER_THREAD = 16
#: Interleaved python/matrix repetitions; best time of each side kept.
KERNEL_ROUNDS = 3
#: Replay benchmark corpus: each exported scenario trace appears twice,
#: so the memoized replay sees an ~50% verdict-cache hit ceiling.
REPLAY_SHARD_TRACES = 6


def _sweep_specs():
    return campaign_matrix(
        kinds=[GeneratorKind.MCVERSI_RAND],
        faults=[Fault.SQ_NO_FIFO],
        generator_config=bench_generator_config(memory_kib=1),
        system_config=SystemConfig(),
        max_evaluations=12,
        seeds_per_cell=SEEDS,
        base_seed=42)


def _hetero_specs():
    specs = campaign_matrix(
        kinds=[GeneratorKind.MCVERSI_RAND],
        faults=[None],
        generator_config=bench_generator_config(memory_kib=1),
        system_config=SystemConfig(),
        max_evaluations=1,
        seeds_per_cell=len(HETERO_BUDGETS),
        base_seed=7)
    return [replace(spec, max_evaluations=budget)
            for spec, budget in zip(specs, HETERO_BUDGETS)]


def _outcomes(report):
    return [(shard.result.found, shard.result.evaluations_to_find)
            for shard in report.shards]


def _scaling_assertions_enabled(reason: str) -> bool:
    if default_workers() < WORKERS:
        pytest.skip(f"host exposes {default_workers()} CPU(s); "
                    f"need {WORKERS} to assert {reason}")
    return _timing_assertions_enabled(reason)


def _timing_assertions_enabled(reason: str) -> bool:
    """Gate for timing assertions that need quiet, not parallel, CPUs."""
    if os.environ.get("REPRO_STRICT_SCALING", "1") == "0":
        pytest.skip(f"wall-clock {reason} assertion disabled "
                    "(REPRO_STRICT_SCALING=0)")
    return True


@pytest.fixture(scope="module")
def sweeps():
    specs = _sweep_specs()
    serial = run_campaigns(specs, workers=1)
    parallel = run_campaigns(specs, workers=WORKERS)
    return serial, parallel


@pytest.fixture(scope="module")
def hetero_sweeps():
    specs = _hetero_specs()
    serial = run_campaigns(specs, workers=1)
    stealing = run_campaigns(specs, workers=WORKERS,
                             chunk_evaluations=CHUNK_EVALUATIONS)
    static = run_campaigns(specs, workers=WORKERS, scheduler="static")
    return serial, stealing, static


@pytest.fixture(scope="module")
def tcp_sweep():
    """The heterogeneous sweep served over loopback TCP to 2 workers."""
    return run_campaigns(_hetero_specs(), workers=TCP_WORKERS,
                         transport="tcp",
                         chunk_evaluations=CHUNK_EVALUATIONS)


def _run_with_tail(specs, **options):
    """Run a sweep recording tail latency (gap of the last two finishes).

    The straggler signature of a chunked sweep: if the final chunk is
    coarse, the last shard finishes long after the second-to-last while
    every other worker idles.  Adaptive sizing should shrink that gap.
    """
    finish_times = []
    started = time.perf_counter()
    report = run_campaigns(
        specs, on_result=lambda shard: finish_times.append(
            time.perf_counter() - started), **options)
    tail = (finish_times[-1] - finish_times[-2]
            if len(finish_times) >= 2 else 0.0)
    return report, tail


#: Serialization-benchmark loop count: enough repetitions that the
#: per-pause pickle costs rise above timer noise.
SERIALIZATION_ROUNDS = 200


@pytest.fixture(scope="module")
def serialization_costs():
    """Single- vs double-serialization cost of one paused chunk.

    Replays the two transport protocols on a real mid-campaign
    checkpoint: the old protocol pickled the checkpoint graph three
    times per pause/resume cycle (telemetry measurement, result-queue
    hop, task-dispatch hop); the payload protocol pickles it once and
    forwards the bytes verbatim on both hops.
    """
    spec = _hetero_specs()[0]  # the 36-evaluation straggler
    paused = execute_chunk_task(ChunkTask(index=0, spec=spec,
                                          pause_after=24))
    assert paused.payload is not None, "chunk unexpectedly completed"
    payload = paused.payload
    checkpoint = payload.load()
    object_outcome = ChunkOutcome(index=0, checkpoint=checkpoint,
                                  telemetry=paused.telemetry)
    object_task = ChunkTask(index=0, spec=spec, checkpoint=checkpoint,
                            pause_after=24)
    payload_task = ChunkTask(index=0, spec=spec, checkpoint=payload,
                             pause_after=24)
    protocol = pickle.HIGHEST_PROTOCOL

    started = time.perf_counter()
    for _ in range(SERIALIZATION_ROUNDS):
        # Old protocol: telemetry dumps + both hops re-pickle the graph.
        pickle.dumps(checkpoint, protocol=protocol)
        pickle.dumps(object_outcome, protocol=protocol)
        pickle.dumps(object_task, protocol=protocol)
    double_seconds = (time.perf_counter() - started) / SERIALIZATION_ROUNDS

    started = time.perf_counter()
    for _ in range(SERIALIZATION_ROUNDS):
        # Payload protocol: one dumps, then both hops copy bytes.
        pickle.dumps(checkpoint, protocol=protocol)
        pickle.dumps(paused, protocol=protocol)
        pickle.dumps(payload_task, protocol=protocol)
    single_seconds = (time.perf_counter() - started) / SERIALIZATION_ROUNDS

    return {
        "checkpoint_bytes": payload.nbytes,
        "rounds": SERIALIZATION_ROUNDS,
        "double_serialization_seconds_per_pause": double_seconds,
        "single_serialization_seconds_per_pause": single_seconds,
        "seconds_saved_per_pause": double_seconds - single_seconds,
        "graph_pickles_avoided_per_pause": 2,
        "bytes_saved_per_pause": 2 * payload.nbytes,
    }, paused, payload


def _memo_specs():
    return campaign_matrix(
        kinds=[GeneratorKind.DIY_LITMUS],
        faults=[None],
        generator_config=bench_generator_config(memory_kib=1),
        system_config=SystemConfig(),
        max_evaluations=MEMO_EVALUATIONS,
        seeds_per_cell=MEMO_SEEDS,
        base_seed=42)


@pytest.fixture(scope="module")
def memo_sweeps():
    """Collective checking on vs off on a litmus-heavy serial sweep.

    The serial path isolates checker time from scheduling noise: both
    runs execute the identical evaluation stream, so the only difference
    is whether each verdict is recomputed (three cycle checks) or served
    from the signature-keyed :class:`VerdictCache`.  The memo-on/memo-off
    pair is repeated ``MEMO_ROUNDS`` times interleaved and the best
    check-time of each side kept, damping scheduler jitter.
    """
    specs = _memo_specs()

    def run(verdict_memo):
        report = run_campaigns(specs, workers=1,
                               chunk_evaluations=MEMO_CHUNK_EVALUATIONS,
                               verdict_memo=verdict_memo)
        check = sum(shard.result.check_seconds for shard in report.shards)
        return report.shards, check, report.wall_seconds, report.verdict_cache

    best = {}
    for _ in range(MEMO_ROUNDS):
        for memo in (False, True):
            shards, check, wall, cache = run(memo)
            if memo not in best or check < best[memo][1]:
                best[memo] = (shards, check, wall, cache)
    return best[False], best[True]


@pytest.fixture(scope="module")
def replay_sweeps(tmp_path_factory):
    """Trace-ingestion replay over an exported corpus, plain vs memoized.

    The corpus is freshly exported from two directed scenarios and
    duplicated file-for-file, so the memoized replay's verdict cache has
    a guaranteed hit for every second trace; verdicts must be identical
    either way.
    """
    import shutil

    from repro.bridge.replay import run_replay_sweep
    from repro.harness.scenarios import export_scenario_corpus

    corpus = str(tmp_path_factory.mktemp("replay-corpus"))
    paths = export_scenario_corpus(
        corpus, faults=[Fault.SQ_NO_FIFO, Fault.MESI_LQ_IS_INV],
        runs_per_scenario=1)
    for path in paths:
        directory, name = os.path.split(path)
        shutil.copy(path, os.path.join(directory, f"dup-{name}"))
    plain = run_replay_sweep(corpus, shard_traces=REPLAY_SHARD_TRACES)
    memo = run_replay_sweep(corpus, shard_traces=REPLAY_SHARD_TRACES,
                            verdict_memo=True)
    return len(paths) * 2, plain, memo


def test_replay_memoization_preserves_verdicts(replay_sweeps, capsys):
    traces, plain, memo = replay_sweeps
    assert len(plain.replay_verdicts()) == traces
    assert plain.replay_verdicts() == memo.replay_verdicts()
    assert memo.verdict_cache["hits"] > 0, \
        "duplicated corpus must produce verdict-cache hits"
    check = sum(shard.result.check_seconds for shard in plain.shards)
    with capsys.disabled():
        print(f"\n  [bench] replay: {traces} traces, "
              f"{traces / max(check, 1e-9):.0f} traces/check-second, "
              f"memo hit_rate={memo.verdict_cache['hit_rate']:.0%}")


def _random_kernel_execution(rng: random.Random):
    """One random SC-interleaved candidate execution (reads may go stale).

    Mirrors the tests' equivalence-fuzz generator in miniature: a few
    reads observe an older same-address write, so the batch mixes
    passing and failing executions and both kernels exercise their
    violation paths at benchmark scale too.
    """
    addresses = [0x1000 * (slot + 1) for slot in range(4)]
    memory = {address: 0 for address in addresses}
    history = {address: [0] for address in addresses}
    next_value = 1
    op_id = 0
    threads = []
    for pid in range(KERNEL_THREADS):
        ops = []
        for _ in range(KERNEL_OPS_PER_THREAD):
            address = rng.choice(addresses)
            if rng.random() < 0.5:
                ops.append(TestOp(op_id, OpKind.WRITE, address, next_value))
                next_value += 1
            else:
                ops.append(TestOp(op_id, OpKind.READ, address))
            op_id += 1
        threads.append(TestThread(pid, tuple(ops)))
    trace = ExecutionTrace()
    cursors = [0] * KERNEL_THREADS
    while True:
        live = [pid for pid in range(KERNEL_THREADS)
                if cursors[pid] < KERNEL_OPS_PER_THREAD]
        if not live:
            break
        pid = rng.choice(live)
        op = threads[pid].ops[cursors[pid]]
        cursors[pid] += 1
        if op.kind is OpKind.WRITE:
            trace.record_write(op.op_id, pid, op.address, op.value,
                               memory[op.address])
            memory[op.address] = op.value
            history[op.address].append(op.value)
        else:
            value = memory[op.address]
            if rng.random() < 0.15:
                value = rng.choice(history[op.address])
            trace.record_read(op.op_id, pid, op.address, value)
    return execution_from_trace(threads, trace)


@pytest.fixture(scope="module")
def kernel_costs():
    """Python-loop vs matrix-batch checking of one shared execution batch.

    Both kernels judge the identical ``KERNEL_EXECUTIONS`` random
    executions under TSO; verdicts must agree execution-for-execution
    (the determinism half) and the per-side best of ``KERNEL_ROUNDS``
    interleaved timings gives the throughput comparison (the speed
    half).  ``None`` without numpy so the JSON artifact still lands.
    """
    if not HAVE_NUMPY:
        return None
    from repro.consistency.matrix import batch_check_executions

    rng = random.Random(0xBE5E7)
    model = model_by_name("TSO")
    executions = [_random_kernel_execution(rng)
                  for _ in range(KERNEL_EXECUTIONS)]
    python_checker = Checker(model, backend="python")

    python_seconds = matrix_seconds = float("inf")
    python_verdicts = matrix_verdicts = None
    for _ in range(KERNEL_ROUNDS):
        started = time.perf_counter()
        python_verdicts = [python_checker.check(execution).passed
                           for execution in executions]
        python_seconds = min(python_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        matrix_verdicts = batch_check_executions(executions, model)
        matrix_seconds = min(matrix_seconds, time.perf_counter() - started)
    assert matrix_verdicts == python_verdicts
    assert python_verdicts.count(True) and python_verdicts.count(False)
    return {
        "executions": KERNEL_EXECUTIONS,
        "threads": KERNEL_THREADS,
        "ops_per_thread": KERNEL_OPS_PER_THREAD,
        "rounds": KERNEL_ROUNDS,
        "python_seconds": python_seconds,
        "matrix_seconds": matrix_seconds,
        "python_executions_per_second": KERNEL_EXECUTIONS / python_seconds,
        "matrix_executions_per_second": KERNEL_EXECUTIONS / matrix_seconds,
        "speedup": python_seconds / matrix_seconds,
    }


@pytest.fixture(scope="module")
def adaptive_sweeps():
    """Fixed-coarse vs adaptive work-stealing on the heterogeneous matrix."""
    specs = _hetero_specs()
    fixed, fixed_tail = _run_with_tail(
        specs, workers=WORKERS, chunk_evaluations=COARSE_CHUNK_EVALUATIONS)
    adaptive, adaptive_tail = _run_with_tail(
        specs, workers=WORKERS, chunk_evaluations=COARSE_CHUNK_EVALUATIONS,
        chunk_sizing="adaptive", target_chunk_seconds=TARGET_CHUNK_SECONDS)
    return (fixed, fixed_tail), (adaptive, adaptive_tail)


def test_parallel_results_match_serial(sweeps, capsys):
    serial, parallel = sweeps
    assert _outcomes(serial) == _outcomes(parallel)
    assert serial.coverage.global_counts == parallel.coverage.global_counts
    assert (serial.coverage.known_transitions
            == parallel.coverage.known_transitions)
    with capsys.disabled():
        print()
        print(format_sweep_report(parallel,
                                  title=f"8-seed sweep at workers={WORKERS}"))


def test_heterogeneous_schedulers_match_serial(hetero_sweeps):
    serial, stealing, static = hetero_sweeps
    assert _outcomes(serial) == _outcomes(stealing)
    assert _outcomes(serial) == _outcomes(static)
    assert serial.coverage.global_counts == stealing.coverage.global_counts


def test_loopback_tcp_matches_serial(hetero_sweeps, tcp_sweep, capsys):
    """Cross-host sharding over loopback TCP: still bit-identical."""
    serial, _, _ = hetero_sweeps
    assert _outcomes(serial) == _outcomes(tcp_sweep)
    assert serial.coverage.global_counts == tcp_sweep.coverage.global_counts
    with capsys.disabled():
        print()
        print("loopback tcp: "
              + format_speedup(serial.wall_seconds, tcp_sweep.wall_seconds,
                               TCP_WORKERS))


def test_parallel_speedup(sweeps, benchmark, capsys):
    serial, parallel = sweeps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_speedup(serial.wall_seconds, parallel.wall_seconds,
                             WORKERS))
    if _scaling_assertions_enabled("scaling"):
        assert parallel.wall_seconds < serial.wall_seconds / 2.0, (
            "expected >= 2x speedup at 4 workers on an 8-seed sweep: "
            + format_speedup(serial.wall_seconds, parallel.wall_seconds,
                             WORKERS))


def test_work_stealing_beats_static(hetero_sweeps, benchmark, capsys):
    serial, stealing, static = hetero_sweeps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("work-stealing: "
              + format_speedup(serial.wall_seconds, stealing.wall_seconds,
                               WORKERS))
        print("static:        "
              + format_speedup(serial.wall_seconds, static.wall_seconds,
                               WORKERS))
    if _scaling_assertions_enabled("work-stealing vs static"):
        assert stealing.wall_seconds < static.wall_seconds, (
            "work-stealing should beat the static partition on a "
            "heterogeneous matrix: "
            f"stealing={stealing.wall_seconds:.2f}s "
            f"static={static.wall_seconds:.2f}s")


def test_adaptive_matches_serial(hetero_sweeps, adaptive_sweeps):
    """Adaptive sizing moves pause points, never results."""
    serial, _, _ = hetero_sweeps
    (fixed, _), (adaptive, _) = adaptive_sweeps
    assert _outcomes(serial) == _outcomes(fixed)
    assert _outcomes(serial) == _outcomes(adaptive)
    assert serial.coverage.global_counts == adaptive.coverage.global_counts


def test_adaptive_reduces_tail_latency(adaptive_sweeps, benchmark, capsys):
    """Adaptive chunks shrink the last-chunk straggler gap.

    With a coarse fixed chunk the sweep's final chunk runs
    ``COARSE_CHUNK_EVALUATIONS`` evaluations while every other worker
    idles; the adaptive controller, targeting a small per-chunk
    wall-clock, dispatches much finer chunks by the time the tail is
    reached.
    """
    (fixed, fixed_tail), (adaptive, adaptive_tail) = adaptive_sweeps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"fixed chunks ({COARSE_CHUNK_EVALUATIONS} evals): "
              f"wall={fixed.wall_seconds:.2f}s tail={fixed_tail:.3f}s")
        print(f"adaptive (target {TARGET_CHUNK_SECONDS}s/chunk): "
              f"wall={adaptive.wall_seconds:.2f}s tail={adaptive_tail:.3f}s")
    if _scaling_assertions_enabled("adaptive tail latency"):
        assert adaptive_tail < fixed_tail, (
            "adaptive chunk sizing should shrink the last-chunk straggler "
            f"gap: adaptive_tail={adaptive_tail:.3f}s "
            f"fixed_tail={fixed_tail:.3f}s")


def test_memoized_results_match_unmemoized(memo_sweeps):
    """Collective checking is invisible in every reported result."""
    (plain_shards, _, _, _), (memo_shards, _, _, cache) = memo_sweeps
    assert ([(shard.result.found, shard.result.evaluations_to_find,
              shard.result.evaluations) for shard in plain_shards]
            == [(shard.result.found, shard.result.evaluations_to_find,
                 shard.result.evaluations) for shard in memo_shards])
    assert cache is not None
    assert cache["hits"] > 0
    assert cache["hit_rate"] > 0.0


def test_memoized_checking_is_faster(memo_sweeps, benchmark, capsys):
    """The signature + cache lookup undercuts the three cycle checks.

    Litmus campaigns re-generate a small set of execution shapes, so
    most verdicts are cache hits; memoization only pays off if
    fingerprinting an execution is clearly cheaper than checking it,
    which is exactly what this guards (the signature is deliberately a
    single thread-granularity refinement pass, not per-event color
    rounds).
    """
    (_, plain_check, plain_wall, _), (memo_shards, memo_check, memo_wall,
                                      cache) = memo_sweeps
    evaluations = sum(shard.result.evaluations for shard in memo_shards)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"uncached: check={plain_check:.3f}s "
              f"({evaluations / plain_check:.0f} evals/check-s) "
              f"wall={plain_wall:.2f}s")
        print(f"cached:   check={memo_check:.3f}s "
              f"({evaluations / memo_check:.0f} evals/check-s) "
              f"wall={memo_wall:.2f}s "
              f"hit_rate={cache['hit_rate']:.0%} "
              f"saved={cache['seconds_saved']:.3f}s")
    # Serial on both sides, so no CPU-count requirement — only quiet.
    if _timing_assertions_enabled("memoized checking"):
        assert memo_check < plain_check, (
            "memoized checking should spend less checker time than "
            f"recomputing every verdict: cached={memo_check:.3f}s "
            f"uncached={plain_check:.3f}s "
            f"hit_rate={cache['hit_rate']:.0%}")


def test_matrix_kernel_beats_python(kernel_costs, benchmark, capsys):
    """The vectorized kernel checks more executions per second.

    The ``>= 5x`` the dense encoding targets shows on larger batches;
    the hard floor asserted here is direction only — matrix strictly
    faster than the python DFS on the shared batch.
    """
    if kernel_costs is None:
        pytest.skip("numpy not installed; matrix kernel unavailable")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"python: {kernel_costs['python_executions_per_second']:.0f} "
              f"executions/s  matrix: "
              f"{kernel_costs['matrix_executions_per_second']:.0f} "
              f"executions/s  speedup={kernel_costs['speedup']:.2f}x")
    # Pure serial CPU work on both sides, so only quiet CPUs required.
    if _timing_assertions_enabled("matrix kernel"):
        assert kernel_costs["matrix_seconds"] < kernel_costs["python_seconds"], (
            "the matrix kernel should check the shared batch faster than "
            f"the python DFS loop: {kernel_costs}")


def test_payload_bytes_forwarded_verbatim(serialization_costs):
    """Deterministic single-serialization check at the wire level.

    The pre-serialized checkpoint bytes must appear as one contiguous
    run inside the pickled outcome and task frames — pickle embeds a
    ``bytes`` field verbatim (length-prefixed), proving the transport
    never re-serializes the checkpoint graph.
    """
    _, paused, payload = serialization_costs
    outcome_wire = pickle.dumps(paused, protocol=pickle.HIGHEST_PROTOCOL)
    assert payload.data in outcome_wire
    task = ChunkTask(index=0, spec=_hetero_specs()[0], checkpoint=payload,
                     pause_after=24)
    task_wire = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
    assert payload.data in task_wire


def test_single_serialization_beats_double(serialization_costs, benchmark,
                                           capsys):
    costs, _, _ = serialization_costs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"checkpoint={costs['checkpoint_bytes']}B "
              f"double={costs['double_serialization_seconds_per_pause']*1e6:.1f}us/pause "
              f"single={costs['single_serialization_seconds_per_pause']*1e6:.1f}us/pause "
              f"saved={costs['seconds_saved_per_pause']*1e6:.1f}us/pause")
    if _scaling_assertions_enabled("single- vs double-serialization"):
        assert (costs["single_serialization_seconds_per_pause"]
                < costs["double_serialization_seconds_per_pause"]), (
            "forwarding pre-serialized payload bytes should be cheaper "
            "than re-pickling the checkpoint graph on both hops: "
            f"{costs}")


def test_bench_json_artifact(sweeps, hetero_sweeps, tcp_sweep,
                             adaptive_sweeps, serialization_costs,
                             memo_sweeps, kernel_costs, replay_sweeps):
    """Dump the measured numbers for CI's BENCH_parallel.json artifact."""
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        pytest.skip("REPRO_BENCH_JSON not set; no artifact requested")
    serial, parallel = sweeps
    hetero_serial, stealing, static = hetero_sweeps
    (fixed, fixed_tail), (adaptive, adaptive_tail) = adaptive_sweeps
    serialization, _, _ = serialization_costs
    ((_, plain_check, plain_wall, _),
     (memo_shards, memo_check, memo_wall, memo_cache)) = memo_sweeps
    replay_traces, replay_plain, replay_memo = replay_sweeps
    replay_check = sum(shard.result.check_seconds
                       for shard in replay_plain.shards)
    memo_evaluations = sum(shard.result.evaluations
                           for shard in memo_shards)
    payload = {
        "python": platform.python_version(),
        "workers": WORKERS,
        "usable_cpus": default_workers(),
        "homogeneous": {
            "shards": len(serial.shards),
            "serial_seconds": serial.wall_seconds,
            "work_stealing_seconds": parallel.wall_seconds,
        },
        "heterogeneous": {
            "shards": len(hetero_serial.shards),
            "budgets": list(HETERO_BUDGETS),
            "chunk_evaluations": CHUNK_EVALUATIONS,
            "serial_seconds": hetero_serial.wall_seconds,
            "work_stealing_seconds": stealing.wall_seconds,
            "static_seconds": static.wall_seconds,
        },
        "adaptive_chunking": {
            # Same heterogeneous sweep, fixed-coarse vs adaptive chunk
            # sizing: wall-clock and tail latency (the gap between the
            # last two shard completions — the straggler signature
            # adaptive sizing attacks).
            "shards": len(fixed.shards),
            "budgets": list(HETERO_BUDGETS),
            "chunk_evaluations": COARSE_CHUNK_EVALUATIONS,
            "target_chunk_seconds": TARGET_CHUNK_SECONDS,
            "fixed_seconds": fixed.wall_seconds,
            "fixed_tail_seconds": fixed_tail,
            "adaptive_seconds": adaptive.wall_seconds,
            "adaptive_tail_seconds": adaptive_tail,
        },
        "serialization": {
            # Checkpoint transport cost per paused chunk, old
            # (double-serialization) protocol replayed against the
            # current single-serialization ChunkPayload path on a real
            # mid-campaign checkpoint.
            **serialization,
        },
        "memoization": {
            # Collective checking on the litmus-heavy serial sweep:
            # checker seconds with every verdict recomputed vs served
            # from the signature-keyed sweep-wide cache, plus the
            # cache's own view (hit-rate, checker seconds it skipped).
            "shards": MEMO_SEEDS,
            "evaluations": memo_evaluations,
            "chunk_evaluations": MEMO_CHUNK_EVALUATIONS,
            "rounds": MEMO_ROUNDS,
            "uncached_check_seconds": plain_check,
            "cached_check_seconds": memo_check,
            "uncached_evals_per_check_second": memo_evaluations / plain_check,
            "cached_evals_per_check_second": memo_evaluations / memo_check,
            "uncached_wall_seconds": plain_wall,
            "cached_wall_seconds": memo_wall,
            "hit_rate": memo_cache["hit_rate"],
            "cache_hits": memo_cache["hits"],
            "check_seconds_saved": memo_cache["seconds_saved"],
        },
        "kernel": {
            # Checker-backend race on one shared batch of random
            # executions: the per-execution python DFS loop vs the
            # matrix kernel's stacked batched check.  ``None`` when
            # numpy is absent (pure-python fallback only).
            **(kernel_costs if kernel_costs is not None
               else {"executions": 0, "speedup": None}),
            "backend_available": kernel_costs is not None,
        },
        "replay": {
            # Trace-ingestion replay over an exported, duplicated
            # corpus: ingest+check throughput of the bridge, and the
            # verdict cache's view of the duplicate half.
            "traces": replay_traces,
            "shard_traces": REPLAY_SHARD_TRACES,
            "check_seconds": replay_check,
            "traces_per_check_second": replay_traces / max(replay_check,
                                                           1e-9),
            "wall_seconds": replay_plain.wall_seconds,
            "memo_wall_seconds": replay_memo.wall_seconds,
            "memo_hit_rate": replay_memo.verdict_cache["hit_rate"],
            "memo_hits": replay_memo.verdict_cache["hits"],
        },
        "distributed": {
            # Same heterogeneous sweep served over loopback TCP: the
            # cross-host transport's overhead trajectory (framing,
            # heartbeats, worker-process startup) tracked per commit.
            "transport": "tcp",
            "tcp_workers": TCP_WORKERS,
            "shards": len(tcp_sweep.shards),
            "chunk_evaluations": CHUNK_EVALUATIONS,
            "serial_seconds": hetero_serial.wall_seconds,
            "loopback_tcp_seconds": tcp_sweep.wall_seconds,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.exists(path)
