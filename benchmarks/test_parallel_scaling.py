"""Scaling of the parallel campaign orchestrator (the "fast" in McVerSi).

An 8-seed Table-4-style sweep is run serially and on a 4-worker pool.
Campaigns are embarrassingly parallel, so on a host with >= 4 usable CPUs
the pool should finish the sweep at least ~2x faster; per-shard results are
bit-identical regardless of the worker count (seeds are derived from the
matrix position, never the worker).

The determinism assertion always runs.  The wall-clock speedup assertion
only runs when the host actually exposes enough CPUs to this process —
asserting parallel speedup on a single-core container would measure
scheduler noise, not the orchestrator — and can be relaxed to a skip with
``REPRO_STRICT_SCALING=0`` on noisy shared CI runners where co-tenant
contention makes wall-clock ratios unreliable.
"""

import os

import pytest

from benchmarks.conftest import bench_generator_config
from repro.core.campaign import GeneratorKind
from repro.harness.parallel import (campaign_matrix, default_workers,
                                    run_campaigns)
from repro.harness.reporting import format_speedup, format_sweep_report
from repro.sim.config import SystemConfig
from repro.sim.faults import Fault

WORKERS = 4
SEEDS = 8


def _sweep_specs():
    return campaign_matrix(
        kinds=[GeneratorKind.MCVERSI_RAND],
        faults=[Fault.SQ_NO_FIFO],
        generator_config=bench_generator_config(memory_kib=1),
        system_config=SystemConfig(),
        max_evaluations=12,
        seeds_per_cell=SEEDS,
        base_seed=42)


@pytest.fixture(scope="module")
def sweeps():
    specs = _sweep_specs()
    serial = run_campaigns(specs, workers=1)
    parallel = run_campaigns(specs, workers=WORKERS)
    return serial, parallel


def test_parallel_results_match_serial(sweeps, capsys):
    serial, parallel = sweeps
    serial_outcomes = [(s.result.found, s.result.evaluations_to_find)
                       for s in serial.shards]
    parallel_outcomes = [(s.result.found, s.result.evaluations_to_find)
                         for s in parallel.shards]
    assert serial_outcomes == parallel_outcomes
    assert serial.coverage.global_counts == parallel.coverage.global_counts
    assert (serial.coverage.known_transitions
            == parallel.coverage.known_transitions)
    with capsys.disabled():
        print()
        print(format_sweep_report(parallel,
                                  title=f"8-seed sweep at workers={WORKERS}"))


def test_parallel_speedup(sweeps, benchmark, capsys):
    serial, parallel = sweeps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_speedup(serial.wall_seconds, parallel.wall_seconds,
                             WORKERS))
    if default_workers() < WORKERS:
        pytest.skip(f"host exposes {default_workers()} CPU(s); "
                    f"need {WORKERS} to assert wall-clock scaling")
    if os.environ.get("REPRO_STRICT_SCALING", "1") == "0":
        pytest.skip("wall-clock scaling assertion disabled "
                    "(REPRO_STRICT_SCALING=0)")
    assert parallel.wall_seconds < serial.wall_seconds / 2.0, (
        "expected >= 2x speedup at 4 workers on an 8-seed sweep: "
        + format_speedup(serial.wall_seconds, parallel.wall_seconds, WORKERS))
