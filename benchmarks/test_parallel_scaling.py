"""Scaling of the parallel campaign orchestrator (the "fast" in McVerSi).

Two Table-4-style sweeps are measured:

* a *homogeneous* 8-seed sweep, run serially and on the 4-worker
  work-stealing pool — campaigns are embarrassingly parallel, so on a host
  with >= 4 usable CPUs the pool should finish at least ~2x faster;
* a *heterogeneous* sweep (mixed ``max_evaluations``: a few long shards
  among many short ones), run serially, on the work-stealing scheduler
  with chunked campaigns, and on the static scheduler — the work-stealing
  pool should beat the static partition, which idles every worker behind
  the block that drew the long shards.

Per-shard results are bit-identical regardless of scheduler, worker count
or chunking (seeds derive from the matrix position and checkpoints carry
all cross-evaluation state); the determinism assertions always run.  The
wall-clock assertions only run when the host actually exposes enough CPUs
to this process — asserting parallel speedup on a single-core container
would measure scheduler noise, not the orchestrator — and can be relaxed
to a skip with ``REPRO_STRICT_SCALING=0`` on noisy shared CI runners.

Set ``REPRO_BENCH_JSON=/path/to/BENCH_parallel.json`` to dump the measured
wall-clock numbers as JSON (CI uploads this as an artifact on every push
to main, so the perf trajectory is tracked across commits).
"""

import json
import os
import platform
from dataclasses import replace

import pytest

from benchmarks.conftest import bench_generator_config
from repro.core.campaign import GeneratorKind
from repro.harness.parallel import (campaign_matrix, default_workers,
                                    run_campaigns)
from repro.harness.reporting import format_speedup, format_sweep_report
from repro.sim.config import SystemConfig
from repro.sim.faults import Fault

WORKERS = 4
TCP_WORKERS = 2
SEEDS = 8
CHUNK_EVALUATIONS = 4
#: Per-shard budgets of the heterogeneous sweep: two stragglers in front
#: (exactly where a contiguous static partition hurts most) among short
#: shards.
HETERO_BUDGETS = (36, 36, 6, 6, 6, 6, 6, 6)


def _sweep_specs():
    return campaign_matrix(
        kinds=[GeneratorKind.MCVERSI_RAND],
        faults=[Fault.SQ_NO_FIFO],
        generator_config=bench_generator_config(memory_kib=1),
        system_config=SystemConfig(),
        max_evaluations=12,
        seeds_per_cell=SEEDS,
        base_seed=42)


def _hetero_specs():
    specs = campaign_matrix(
        kinds=[GeneratorKind.MCVERSI_RAND],
        faults=[None],
        generator_config=bench_generator_config(memory_kib=1),
        system_config=SystemConfig(),
        max_evaluations=1,
        seeds_per_cell=len(HETERO_BUDGETS),
        base_seed=7)
    return [replace(spec, max_evaluations=budget)
            for spec, budget in zip(specs, HETERO_BUDGETS)]


def _outcomes(report):
    return [(shard.result.found, shard.result.evaluations_to_find)
            for shard in report.shards]


def _scaling_assertions_enabled(reason: str) -> bool:
    if default_workers() < WORKERS:
        pytest.skip(f"host exposes {default_workers()} CPU(s); "
                    f"need {WORKERS} to assert {reason}")
    if os.environ.get("REPRO_STRICT_SCALING", "1") == "0":
        pytest.skip(f"wall-clock {reason} assertion disabled "
                    "(REPRO_STRICT_SCALING=0)")
    return True


@pytest.fixture(scope="module")
def sweeps():
    specs = _sweep_specs()
    serial = run_campaigns(specs, workers=1)
    parallel = run_campaigns(specs, workers=WORKERS)
    return serial, parallel


@pytest.fixture(scope="module")
def hetero_sweeps():
    specs = _hetero_specs()
    serial = run_campaigns(specs, workers=1)
    stealing = run_campaigns(specs, workers=WORKERS,
                             chunk_evaluations=CHUNK_EVALUATIONS)
    static = run_campaigns(specs, workers=WORKERS, scheduler="static")
    return serial, stealing, static


@pytest.fixture(scope="module")
def tcp_sweep():
    """The heterogeneous sweep served over loopback TCP to 2 workers."""
    return run_campaigns(_hetero_specs(), workers=TCP_WORKERS,
                         transport="tcp",
                         chunk_evaluations=CHUNK_EVALUATIONS)


def test_parallel_results_match_serial(sweeps, capsys):
    serial, parallel = sweeps
    assert _outcomes(serial) == _outcomes(parallel)
    assert serial.coverage.global_counts == parallel.coverage.global_counts
    assert (serial.coverage.known_transitions
            == parallel.coverage.known_transitions)
    with capsys.disabled():
        print()
        print(format_sweep_report(parallel,
                                  title=f"8-seed sweep at workers={WORKERS}"))


def test_heterogeneous_schedulers_match_serial(hetero_sweeps):
    serial, stealing, static = hetero_sweeps
    assert _outcomes(serial) == _outcomes(stealing)
    assert _outcomes(serial) == _outcomes(static)
    assert serial.coverage.global_counts == stealing.coverage.global_counts


def test_loopback_tcp_matches_serial(hetero_sweeps, tcp_sweep, capsys):
    """Cross-host sharding over loopback TCP: still bit-identical."""
    serial, _, _ = hetero_sweeps
    assert _outcomes(serial) == _outcomes(tcp_sweep)
    assert serial.coverage.global_counts == tcp_sweep.coverage.global_counts
    with capsys.disabled():
        print()
        print("loopback tcp: "
              + format_speedup(serial.wall_seconds, tcp_sweep.wall_seconds,
                               TCP_WORKERS))


def test_parallel_speedup(sweeps, benchmark, capsys):
    serial, parallel = sweeps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_speedup(serial.wall_seconds, parallel.wall_seconds,
                             WORKERS))
    if _scaling_assertions_enabled("scaling"):
        assert parallel.wall_seconds < serial.wall_seconds / 2.0, (
            "expected >= 2x speedup at 4 workers on an 8-seed sweep: "
            + format_speedup(serial.wall_seconds, parallel.wall_seconds,
                             WORKERS))


def test_work_stealing_beats_static(hetero_sweeps, benchmark, capsys):
    serial, stealing, static = hetero_sweeps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("work-stealing: "
              + format_speedup(serial.wall_seconds, stealing.wall_seconds,
                               WORKERS))
        print("static:        "
              + format_speedup(serial.wall_seconds, static.wall_seconds,
                               WORKERS))
    if _scaling_assertions_enabled("work-stealing vs static"):
        assert stealing.wall_seconds < static.wall_seconds, (
            "work-stealing should beat the static partition on a "
            "heterogeneous matrix: "
            f"stealing={stealing.wall_seconds:.2f}s "
            f"static={static.wall_seconds:.2f}s")


def test_bench_json_artifact(sweeps, hetero_sweeps, tcp_sweep):
    """Dump the measured numbers for CI's BENCH_parallel.json artifact."""
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        pytest.skip("REPRO_BENCH_JSON not set; no artifact requested")
    serial, parallel = sweeps
    hetero_serial, stealing, static = hetero_sweeps
    payload = {
        "python": platform.python_version(),
        "workers": WORKERS,
        "usable_cpus": default_workers(),
        "homogeneous": {
            "shards": len(serial.shards),
            "serial_seconds": serial.wall_seconds,
            "work_stealing_seconds": parallel.wall_seconds,
        },
        "heterogeneous": {
            "shards": len(hetero_serial.shards),
            "budgets": list(HETERO_BUDGETS),
            "chunk_evaluations": CHUNK_EVALUATIONS,
            "serial_seconds": hetero_serial.wall_seconds,
            "work_stealing_seconds": stealing.wall_seconds,
            "static_seconds": static.wall_seconds,
        },
        "distributed": {
            # Same heterogeneous sweep served over loopback TCP: the
            # cross-host transport's overhead trajectory (framing,
            # heartbeats, worker-process startup) tracked per commit.
            "transport": "tcp",
            "tcp_workers": TCP_WORKERS,
            "shards": len(tcp_sweep.shards),
            "chunk_evaluations": CHUNK_EVALUATIONS,
            "serial_seconds": hetero_serial.wall_seconds,
            "loopback_tcp_seconds": tcp_sweep.wall_seconds,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    assert os.path.exists(path)
