"""Table 3: test generation parameters.

Echoes the generator parameters (paper values and the scaled values used by
the benchmark suite) and measures raw test-generation throughput, verifying
that the generated operation mix matches the configured biases.
"""

import random
from collections import Counter

from benchmarks.conftest import bench_generator_config
from repro.core.config import GeneratorConfig
from repro.core.generator import RandomTestGenerator
from repro.harness.reporting import format_key_value
from repro.sim.testprogram import OpKind


def test_table3_generator_parameters(benchmark, capsys, scale):
    paper = GeneratorConfig.paper_table3()
    bench = bench_generator_config(memory_kib=8, scale=scale)
    generator = RandomTestGenerator(bench, random.Random(11))

    chromosomes = benchmark(lambda: generator.generate_population(20))

    kinds = Counter(op.kind for chromosome in chromosomes
                    for _, op in chromosome.slots)
    total = sum(kinds.values())
    read_fraction = (kinds[OpKind.READ] + kinds[OpKind.READ_ADDR_DP]) / total
    write_fraction = (kinds[OpKind.WRITE] + kinds[OpKind.RMW]) / total
    assert 0.4 < read_fraction < 0.7
    assert 0.3 < write_fraction < 0.6

    with capsys.disabled():
        print()
        print(format_key_value("Table 3 (paper parameters)", paper.describe()))
        print()
        print(format_key_value("Table 3 (benchmark-scale parameters)",
                               bench.describe()))
        mix = ", ".join(f"{kind.value}:{count / total:.1%}"
                        for kind, count in sorted(kinds.items(),
                                                  key=lambda item: item[0].value))
        print(f"\nobserved operation mix over {total} generated ops: {mix}")
