"""Debugging aid: reproduce a hanging MESI iteration and dump state."""

import random

from repro.sim.config import SystemConfig, TestMemoryLayout
from repro.sim.coverage import CoverageCollector
from repro.sim.faults import FaultSet
from repro.sim.host import HostAssistedBarrier
from repro.sim.interconnect import Interconnect
from repro.sim.kernel import SimKernel, SimulationLimitError
from repro.sim.memory import MainMemory
from repro.sim.coherence.mesi_l1 import MesiL1Cache
from repro.sim.coherence.mesi_l2 import MesiDirectory
from repro.sim.pipeline.core import CoreEngine
from repro.sim.testprogram import TestOp, TestThread, OpKind
from repro.sim.trace import ExecutionTrace


def run(seed: int, threads, config, max_ticks=200_000):
    kernel = SimKernel(seed=seed, max_ticks=max_ticks)
    memory = MainMemory(config.memory_latency_min, config.memory_latency_max)
    network = Interconnect(kernel, config.network_latency_min,
                           config.network_latency_max)
    coverage = CoverageCollector()
    faults = FaultSet.none()
    trace = ExecutionTrace()
    directory = MesiDirectory(kernel, network, config, memory, coverage, faults)
    cores, l1s = [], []
    for thread in threads:
        l1 = MesiL1Cache(thread.pid, kernel, network, config, coverage, faults)
        core = CoreEngine(thread.pid, kernel, l1, thread, trace, config, faults,
                          random.Random(seed * 31 + thread.pid))
        l1.invalidation_listener = core.on_invalidation
        cores.append(core)
        l1s.append(l1)
    for core in cores:
        core.start()

    def finished():
        return (all(c.done for c in cores) and all(l.quiescent() for l in l1s)
                and directory.quiescent())

    try:
        kernel.run(until=finished)
    except SimulationLimitError:
        pass
    if finished():
        return True
    print(f"--- seed {seed} stuck at tick {kernel.now} ---")
    for core in cores:
        print(f"core {core.core_id}: done={core.done} next_op={core.next_op_index}/"
              f"{len(core.thread.ops)} rob={[ (e.op.op_id, e.op.kind.value, e.performed, e.request_outstanding) for e in core.rob]} "
              f"sq={[ (e.op.op_id, e.draining) for e in core.store_buffer.entries]}")
    for l1 in l1s:
        lines = [(hex(line.line_address), line.state) for line in l1.array.all_lines()]
        print(f"{l1.name}: quiescent={l1.quiescent()} mshrs={list(map(hex, l1._mshrs))} "
              f"evicting={[(hex(k), v.state) for k, v in l1._evicting.items()]} "
              f"deferred={list(map(hex, l1._deferred_cpu))} retries={l1._pending_retries} lines={lines}")
    busy = [(hex(line.line_address), line.state, line.meta) for line in directory.array.all_lines()
            if line.state not in ("SS", "EE", "MT")]
    print(f"dir: quiescent={directory.quiescent()} busy={busy} "
          f"evicting={[(hex(k), v.state) for k, v in directory._evicting.items()]} "
          f"queued={[(hex(k), len(v)) for k, v in directory._queued.items() if v]} "
          f"fetches={directory._pending_fetches} retries={directory._pending_retries}")
    return False


def main():
    layout = TestMemoryLayout.kib(1)
    a0 = layout.slot_address(0)
    a1 = layout.slot_address(4)
    threads = [
        TestThread(0, (TestOp(0, OpKind.WRITE, a0, 1), TestOp(1, OpKind.WRITE, a1, 2),
                       TestOp(2, OpKind.READ, a0))),
        TestThread(1, (TestOp(3, OpKind.READ, a1), TestOp(4, OpKind.READ, a0),
                       TestOp(5, OpKind.WRITE, a1, 6))),
    ]
    config = SystemConfig(num_cores=2)
    for seed in range(30):
        if not run(seed, threads, config):
            break


if __name__ == "__main__":
    main()
